package mobilecongest

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"mobilecongest/internal/algorithms"
)

func TestScenarioMinimal(t *testing.T) {
	res, err := NewScenario(
		WithTopology("cycle", 10, 0),
		WithProtocol(algorithms.FloodMax(5)),
		WithSeed(1),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outputs {
		if o.(uint64) != 9 {
			t.Fatalf("node %d output %v, want 9", i, o)
		}
	}
	if res.Stats.Rounds != 5 {
		t.Fatalf("rounds = %d, want 5", res.Stats.Rounds)
	}
}

func TestScenarioEngineSelection(t *testing.T) {
	base := []ScenarioOption{
		WithTopology("clique", 8, 0),
		WithProtocol(algorithms.FloodMax(2)),
		WithSeed(3),
	}
	for _, name := range EngineNames() {
		res, err := NewScenario(append(base, WithEngineName(name))...).Run()
		if err != nil {
			t.Fatalf("engine %s: %v", name, err)
		}
		if res.Stats.Rounds != 2 {
			t.Fatalf("engine %s: rounds = %d, want 2", name, res.Stats.Rounds)
		}
	}
	if s := NewScenario(append(base, WithEngineName("warp"))...); s != nil {
		if _, err := s.Run(); err == nil {
			t.Fatal("unknown engine name accepted")
		}
	}
}

func TestScenarioDeterministicAcrossRuns(t *testing.T) {
	mk := func() *Scenario {
		return NewScenario(
			WithTopology("circulant", 12, 2),
			WithProtocol(algorithms.FloodMax(7)),
			WithAdversaryName("flip", 2),
			WithSeed(9),
		)
	}
	r1, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats != r2.Stats || !reflect.DeepEqual(r1.Outputs, r2.Outputs) {
		t.Fatal("identical scenarios produced different results")
	}
	// Re-running the SAME scenario value must also be deterministic: the
	// registry adversary is rebuilt fresh each Run.
	s := mk()
	r3, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	r4, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r3.Stats != r4.Stats {
		t.Fatal("re-running one scenario value was not deterministic")
	}
}

// TestScenarioReusedAdversaryInstanceDeterministic: a Scenario holding one
// stateful adversary INSTANCE (WithAdversary, not a registry name) re-runs
// identically: the engine resets the adversary's per-run state (RNG stream,
// spent budget, rotation cursors) at every run start, and the Scenario's
// reused RunContext leaks nothing between runs.
func TestScenarioReusedAdversaryInstanceDeterministic(t *testing.T) {
	g := NewCirculant(12, 2)
	s := NewScenario(
		WithGraph(g),
		WithProtocol(algorithms.FloodMax(7)),
		WithAdversary(NewMobileByzantine(g, 2, 11)),
		WithSeed(9),
	)
	r1, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.CorruptedEdgeRounds == 0 {
		t.Fatal("byzantine instance corrupted nothing")
	}
	for rep := 0; rep < 2; rep++ {
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if r.Stats != r1.Stats || !reflect.DeepEqual(r.Outputs, r1.Outputs) {
			t.Fatalf("re-run %d with a reused adversary instance diverged:\n first %+v\n rerun %+v", rep, r1.Stats, r.Stats)
		}
	}
}

// TestScenarioCloneConcurrent is the concurrent-reuse contract of Clone:
// one scenario fanned out across goroutines as clones (each with its own
// RunContext) runs race-free — this test is meaningful under -race, which CI
// runs — and every clone reproduces the original's result exactly. The
// adversary is configured by registry name, so each run builds a fresh
// instance; that is the documented pattern for fan-out.
func TestScenarioCloneConcurrent(t *testing.T) {
	base := NewScenario(
		WithTopology("circulant", 16, 2),
		WithProtocolName("broadcast"),
		WithAdversaryName("flip", 2),
		WithSeed(19),
	)
	// Resolve the topology once so the clones share one graph instance.
	if _, err := base.Graph(); err != nil {
		t.Fatal(err)
	}
	want, err := base.Clone().Run()
	if err != nil {
		t.Fatal(err)
	}
	const parallel = 8
	results := make([]*Result, parallel)
	errs := make([]error, parallel)
	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		c := base.Clone()
		go func() {
			defer wg.Done()
			// Two runs per clone: the clone's own RunContext reuse must stay
			// private to its goroutine.
			if _, err := c.Run(); err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = c.Run()
		}()
	}
	wg.Wait()
	for i := 0; i < parallel; i++ {
		if errs[i] != nil {
			t.Fatalf("clone %d: %v", i, errs[i])
		}
		if results[i].Stats != want.Stats || !reflect.DeepEqual(results[i].Outputs, want.Outputs) {
			t.Fatalf("clone %d diverged:\n want %+v\n got  %+v", i, want.Stats, results[i].Stats)
		}
	}
	// The original value is untouched and still runnable.
	got, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats != want.Stats {
		t.Fatalf("original scenario diverged after clones ran: %+v vs %+v", got.Stats, want.Stats)
	}
}

func TestScenarioErrors(t *testing.T) {
	if _, err := NewScenario(WithProtocol(algorithms.FloodMax(1))).Run(); err == nil {
		t.Fatal("scenario without graph accepted")
	}
	if _, err := NewScenario(WithTopology("clique", 4, 0)).Run(); err == nil {
		t.Fatal("scenario without protocol accepted")
	}
	if _, err := NewScenario(
		WithTopology("nosuch", 4, 0),
		WithProtocol(algorithms.FloodMax(1)),
	).Run(); err == nil || !strings.Contains(err.Error(), "unknown topology") {
		t.Fatalf("unknown topology: err = %v", err)
	}
	if _, err := NewScenario(
		WithTopology("clique", 4, 0),
		WithProtocol(algorithms.FloodMax(1)),
		WithAdversaryName("nosuch", 1),
	).Run(); err == nil || !strings.Contains(err.Error(), "unknown adversary") {
		t.Fatalf("unknown adversary: err = %v", err)
	}
	if _, err := NewScenario(
		WithTopology("hypercube", 12, 0), // not a power of two
		WithProtocol(algorithms.FloodMax(1)),
	).Run(); err == nil {
		t.Fatal("invalid hypercube size accepted")
	}
}

func TestScenarioOverlappingOptionsLastWins(t *testing.T) {
	// WithGraph vs WithTopology: whichever comes last decides.
	res, err := NewScenario(
		WithGraph(NewClique(4)),
		WithTopology("cycle", 10, 0),
		WithProtocol(algorithms.FloodMax(5)),
		WithSeed(1),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 10 {
		t.Fatalf("topology option applied last should win: got %d nodes, want 10", len(res.Outputs))
	}
	res, err = NewScenario(
		WithTopology("cycle", 10, 0),
		WithGraph(NewClique(4)),
		WithProtocol(algorithms.FloodMax(1)),
		WithSeed(1),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 4 {
		t.Fatalf("graph option applied last should win: got %d nodes, want 4", len(res.Outputs))
	}
	// WithAdversary vs WithAdversaryName: last wins too.
	res, err = NewScenario(
		WithTopology("clique", 6, 0),
		WithProtocol(algorithms.FloodMax(2)),
		WithAdversaryName("flip", 2),
		WithAdversary(nil), // back to fault-free
		WithSeed(1),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CorruptedEdgeRounds != 0 {
		t.Fatalf("later WithAdversary(nil) should displace the named adversary: %+v", res.Stats)
	}
}

func TestRegistryContents(t *testing.T) {
	for _, want := range []string{"clique", "circulant", "cycle", "grid", "hypercube", "path"} {
		if _, err := BuildTopology(want, 8, 0); err != nil {
			t.Fatalf("builtin topology %s: %v", want, err)
		}
	}
	// Expanders need d < n; the same (n, k) cell always builds the same graph.
	e1, err := BuildTopology("expander", 16, 4)
	if err != nil {
		t.Fatalf("builtin topology expander: %v", err)
	}
	e2, _ := BuildTopology("expander", 16, 4)
	if !reflect.DeepEqual(e1.Edges(), e2.Edges()) {
		t.Fatal("expander topology not deterministic for fixed (n, k)")
	}
	if _, err := BuildTopology("expander", 8, 9); err == nil {
		t.Fatal("expander with degree >= n accepted")
	}
	g, err := BuildTopology("clique", 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"none", "eavesdrop", "flip", "drop", "randomize", "swap", "inject", "busiest", "static-flip", "static-eavesdrop"} {
		if _, err := BuildAdversary(want, g, 1, 1); err != nil {
			t.Fatalf("builtin adversary %s: %v", want, err)
		}
	}
	// Custom registrations are visible.
	RegisterTopology("test-petersen", func(_, _ int) (*Graph, error) {
		return NewClique(10), nil
	})
	if _, err := BuildTopology("test-petersen", 0, 0); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range Topologies() {
		if n == "test-petersen" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered topology not listed")
	}
}

func TestDeprecatedRunWrapperStillWorks(t *testing.T) {
	g := NewClique(5)
	res, err := Run(RunConfig{Graph: g, Seed: 1}, algorithms.FloodMax(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", res.Stats.Rounds)
	}
}
