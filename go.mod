module mobilecongest

go 1.24
