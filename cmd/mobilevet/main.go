// Command mobilevet runs the mobilecongest lint suite: eight analyzers that
// machine-check the simulator's correctness invariants (seed-determinism,
// slab ownership, map-iteration folds, the port-native boundary, the
// observer read-only contract, shard-worker write isolation, hot-path
// allocation freedom, and arena parity lifetimes).
//
// Standalone:
//
//	mobilevet ./...              # lint packages under the current module
//	mobilevet -detrand=false ./internal/rewind
//	mobilevet -json ./...        # machine-readable findings on stdout
//
// As a go vet tool (includes _test.go files in the load, though the
// analyzers themselves skip test code):
//
//	go vet -vettool=$(command -v mobilevet) ./...
//
// Cross-package facts (hotalloc's hotpath marks) flow through per-package
// fact files: in-process runs propagate them in dependency order straight
// from the go list -deps load; under go vet they serialize into the vetx
// files the go command schedules and caches.
//
// Findings suppress with an annotated, reasoned directive on or above the
// offending line:
//
//	//lint:ignore portnative abort path runs once; clarity over zero-alloc
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mobilecongest/internal/lint"
	"mobilecongest/internal/lint/analysis"
	"mobilecongest/internal/lint/lintutil"
)

// version is the tool identity `go vet -vettool` caches against; bump when
// analyzer behavior changes so stale vet caches invalidate.
const version = "v7"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The go command probes vet tools before use: `-V=full` asks for a
	// cache-keying identity line.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("mobilevet version %s\n", version)
		return 0
	}

	suite := lint.Suite()
	fs := flag.NewFlagSet("mobilevet", flag.ContinueOnError)
	enabled := make(map[string]*bool, len(suite))
	for _, a := range suite {
		doc, _, _ := strings.Cut(a.Doc, ";")
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+doc)
	}
	jsonFlags := fs.Bool("flags", false, "print the tool's flags as JSON and exit (go vet protocol)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (file/line/col/analyzer/message/suppressed) on stdout")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: mobilevet [flags] <packages>\n       go vet -vettool=$(command -v mobilevet) <packages>\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *jsonFlags {
		return printFlags(fs)
	}

	var active []*analysis.Analyzer
	for _, a := range suite {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitcheck(rest[0], active)
	}
	if len(rest) == 0 {
		fs.Usage()
		return 2
	}
	return standalone(rest, active, *jsonOut)
}

// printFlags implements the `-flags` half of the go vet tool protocol: a
// JSON description of the flags the go command may forward.
func printFlags(fs *flag.FlagSet) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		if f.Name == "flags" {
			return
		}
		out = append(out, jsonFlag{Name: f.Name, Bool: true, Usage: f.Usage})
	})
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	os.Stdout.Write(data)
	fmt.Println()
	return 0
}

// jsonFinding is the machine-readable finding shape -json emits: enough for
// CI to place inline annotations without re-parsing the text form.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// standalone loads patterns through the go list driver and lints them. The
// exit status reflects only active (unsuppressed) findings; -json output
// additionally carries the suppressed ones so tooling can audit directives.
func standalone(patterns []string, analyzers []*analysis.Analyzer, jsonOut bool) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobilevet:", err)
		return 2
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobilevet:", err)
		return 2
	}
	findings, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobilevet:", err)
		return 2
	}
	rel := func(name string) string {
		if r, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return name
	}
	active := analysis.Active(findings)
	if jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:       rel(f.Posn.Filename),
				Line:       f.Posn.Line,
				Col:        f.Posn.Column,
				Analyzer:   f.Analyzer,
				Message:    f.Message,
				Suppressed: f.Suppressed,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "mobilevet:", err)
			return 2
		}
	} else {
		for _, f := range active {
			f.Posn.Filename = rel(f.Posn.Filename)
			fmt.Println(f)
		}
	}
	if len(active) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the configuration file the go command hands a vet tool for
// one package — the unitchecker protocol.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// modulePrefix scopes fact computation under go vet: only packages of this
// module can carry mobilevet facts, so dependency (VetxOnly) runs over
// anything else — the stdlib — write an empty fact file and return.
const modulePrefix = "mobilecongest"

// inModule reports whether an import path belongs to this module.
func inModule(path string) bool {
	base := lintutil.BasePkgPath(path)
	return base == modulePrefix || strings.HasPrefix(base, modulePrefix+"/")
}

// unitcheck lints the single package described by a go vet .cfg file,
// reading dependency facts from the vetx files the go command scheduled and
// writing this package's facts to VetxOutput.
func unitcheck(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobilevet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mobilevet: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	factful := false
	for _, a := range analyzers {
		if len(a.FactTypes) > 0 {
			factful = true
		}
	}
	if cfg.VetxOnly && (!factful || !inModule(cfg.ImportPath)) {
		// Nothing to compute: facts live only on module packages. The go
		// command still expects the vetx file to exist for caching.
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "mobilevet:", err)
			return 2
		}
		return 0
	}

	// Decode dependency facts. Only module packages ever export any, so
	// skip the stdlib's empty files.
	registry := analysis.FactRegistry(analyzers)
	store := analysis.NewFactStore()
	for path, file := range cfg.PackageVetx {
		if !inModule(path) {
			continue
		}
		raw, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mobilevet:", err)
			return 2
		}
		set, err := analysis.DecodeFactSet(raw, registry)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mobilevet: %s: %v\n", file, err)
			return 2
		}
		store.Set(path, set)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	goVersion := cfg.GoVersion
	if v, ok := strings.CutPrefix(goVersion, "go"); ok {
		// types.Config wants the "go1.N" form without patch suffixes beyond
		// what it understands; pass through the two-part prefix.
		parts := strings.SplitN(v, ".", 3)
		if len(parts) >= 2 {
			goVersion = "go" + parts[0] + "." + parts[1]
		}
	}
	pkg, err := analysis.CheckFiles(cfg.ImportPath, cfg.GoFiles, goVersion, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "mobilevet:", err)
		return 2
	}
	pkg.FactsOnly = cfg.VetxOnly
	findings, err := analysis.RunPackage(pkg, analyzers, store)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobilevet:", err)
		return 2
	}
	if cfg.VetxOutput != "" {
		var encoded []byte
		if set := analysis.PackageFacts(store, pkg.Types.Path()); set != nil {
			if encoded, err = set.Encode(); err != nil {
				fmt.Fprintln(os.Stderr, "mobilevet:", err)
				return 2
			}
		}
		if err := os.WriteFile(cfg.VetxOutput, encoded, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "mobilevet:", err)
			return 2
		}
	}
	active := analysis.Active(findings)
	for _, f := range active {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", f.Posn, f.Message, f.Analyzer)
	}
	if len(active) > 0 {
		return 1
	}
	return 0
}
