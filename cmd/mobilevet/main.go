// Command mobilevet runs the mobilecongest lint suite: five analyzers that
// machine-check the simulator's correctness invariants (seed-determinism,
// slab ownership, map-iteration folds, the port-native boundary, and the
// observer read-only contract).
//
// Standalone:
//
//	mobilevet ./...              # lint packages under the current module
//	mobilevet -detrand=false ./internal/rewind
//
// As a go vet tool (includes _test.go files in the load, though the
// analyzers themselves skip test code):
//
//	go vet -vettool=$(command -v mobilevet) ./...
//
// Findings suppress with an annotated, reasoned directive on or above the
// offending line:
//
//	//lint:ignore portnative abort path runs once; clarity over zero-alloc
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mobilecongest/internal/lint"
	"mobilecongest/internal/lint/analysis"
)

// version is the tool identity `go vet -vettool` caches against; bump when
// analyzer behavior changes so stale vet caches invalidate.
const version = "v6"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The go command probes vet tools before use: `-V=full` asks for a
	// cache-keying identity line.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("mobilevet version %s\n", version)
		return 0
	}

	suite := lint.Suite()
	fs := flag.NewFlagSet("mobilevet", flag.ContinueOnError)
	enabled := make(map[string]*bool, len(suite))
	for _, a := range suite {
		doc, _, _ := strings.Cut(a.Doc, ";")
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+doc)
	}
	jsonFlags := fs.Bool("flags", false, "print the tool's flags as JSON and exit (go vet protocol)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: mobilevet [flags] <packages>\n       go vet -vettool=$(command -v mobilevet) <packages>\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *jsonFlags {
		return printFlags(fs)
	}

	var active []*analysis.Analyzer
	for _, a := range suite {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitcheck(rest[0], active)
	}
	if len(rest) == 0 {
		fs.Usage()
		return 2
	}
	return standalone(rest, active)
}

// printFlags implements the `-flags` half of the go vet tool protocol: a
// JSON description of the flags the go command may forward.
func printFlags(fs *flag.FlagSet) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		if f.Name == "flags" {
			return
		}
		out = append(out, jsonFlag{Name: f.Name, Bool: true, Usage: f.Usage})
	})
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	os.Stdout.Write(data)
	fmt.Println()
	return 0
}

// standalone loads patterns through the go list driver and lints them.
func standalone(patterns []string, analyzers []*analysis.Analyzer) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobilevet:", err)
		return 2
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobilevet:", err)
		return 2
	}
	findings, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobilevet:", err)
		return 2
	}
	for _, f := range findings {
		if rel, err := filepath.Rel(cwd, f.Posn.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			f.Posn.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the configuration file the go command hands a vet tool for
// one package — the unitchecker protocol.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck lints the single package described by a go vet .cfg file.
func unitcheck(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobilevet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mobilevet: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// The suite exports no cross-package facts, but the go command still
	// expects the facts file to exist for caching.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "mobilevet:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	goVersion := cfg.GoVersion
	if v, ok := strings.CutPrefix(goVersion, "go"); ok {
		// types.Config wants the "go1.N" form without patch suffixes beyond
		// what it understands; pass through the two-part prefix.
		parts := strings.SplitN(v, ".", 3)
		if len(parts) >= 2 {
			goVersion = "go" + parts[0] + "." + parts[1]
		}
	}
	pkg, err := analysis.CheckFiles(cfg.ImportPath, cfg.GoFiles, goVersion, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "mobilevet:", err)
		return 2
	}
	findings, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobilevet:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", f.Posn, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
