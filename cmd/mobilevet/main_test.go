package main

import (
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the mobilevet binary into a scratch dir.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mobilevet")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building mobilevet: %v\n%s", err, out)
	}
	return bin
}

// TestStandalone exercises the go list driver end to end: a clean package
// exits 0, a fixture with violations exits 1 and names them.
func TestStandalone(t *testing.T) {
	bin := buildTool(t)

	if out, err := exec.Command(bin, "mobilecongest/internal/vote").CombinedOutput(); err != nil {
		t.Errorf("clean package: want exit 0, got %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "./...")
	cmd.Dir = filepath.Join("..", "..", "internal", "lint", "portnative", "testdata", "src", "flagged")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("flagged fixture: want nonzero exit, got success\n%s", out)
	}
	if !strings.Contains(string(out), "legacy map Exchange") {
		t.Errorf("flagged fixture output missing the portnative diagnostic:\n%s", out)
	}

	// Disabling the only reporting analyzer must turn the run clean.
	cmd = exec.Command(bin, "-portnative=false", "./...")
	cmd.Dir = filepath.Join("..", "..", "internal", "lint", "portnative", "testdata", "src", "flagged")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Errorf("disabled analyzer: want exit 0, got %v\n%s", err, out)
	}
}

// TestStandaloneJSON exercises -json: findings come back as a machine-
// readable array (suppressed ones included, marked), and the exit code still
// reflects only the active findings.
func TestStandaloneJSON(t *testing.T) {
	bin := buildTool(t)

	cmd := exec.Command(bin, "-json", "./...")
	cmd.Dir = filepath.Join("..", "..", "internal", "lint", "shardsafe", "testdata", "src", "flagged")
	out, err := cmd.Output()
	if err == nil {
		t.Fatalf("flagged fixture: want nonzero exit, got success\n%s", out)
	}
	var findings []struct {
		File       string `json:"file"`
		Line       int    `json:"line"`
		Analyzer   string `json:"analyzer"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed"`
	}
	if err := json.Unmarshal(out, &findings); err != nil {
		t.Fatalf("-json output is not a findings array: %v\n%s", err, out)
	}
	if len(findings) == 0 {
		t.Fatal("-json output has no findings for the flagged fixture")
	}
	for _, f := range findings {
		if f.Analyzer != "shardsafe" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}

	// A clean tree with a reasoned ignore exits 0 but still reports the
	// suppressed finding in the JSON.
	cmd = exec.Command(bin, "-json", "./...")
	cmd.Dir = filepath.Join("..", "..", "internal", "lint", "shardsafe", "testdata", "src", "clean")
	out, err = cmd.Output()
	if err != nil {
		t.Fatalf("clean fixture: want exit 0, got %v\n%s", err, out)
	}
	findings = findings[:0]
	if err := json.Unmarshal(out, &findings); err != nil {
		t.Fatalf("-json output is not a findings array: %v\n%s", err, out)
	}
	for _, f := range findings {
		if !f.Suppressed {
			t.Errorf("clean fixture reported an unsuppressed finding: %+v", f)
		}
	}
}

// TestVettoolProtocol exercises the go vet integration: the -V=full and
// -flags probes, then a real `go vet -vettool` run over clean and flagged
// packages.
func TestVettoolProtocol(t *testing.T) {
	bin := buildTool(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !strings.Contains(string(out), "mobilevet version") {
		t.Errorf("-V=full output %q lacks the version banner", out)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	for _, name := range []string{"arenaparity", "detrand", "hotalloc", "maprange", "obsreadonly", "portnative", "shardsafe", "slabretain"} {
		if !strings.Contains(string(out), `"`+name+`"`) {
			t.Errorf("-flags output lacks analyzer flag %q:\n%s", name, out)
		}
	}

	if out, err := exec.Command("go", "vet", "-vettool="+bin, "mobilecongest/internal/vote").CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool on clean package: %v\n%s", err, out)
	}

	// internal/congest is only clean when the hotpath facts its hot paths
	// depend on (exported by internal/graph's VetxOnly run) decode from the
	// .vetx files — without them hotalloc reports the fact-completeness
	// diagnostic on graph accessor calls, so a clean exit IS the fact
	// round-trip assertion for the unitchecker protocol.
	if out, err := exec.Command("go", "vet", "-vettool="+bin, "mobilecongest/internal/congest").CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool with cross-package facts: %v\n%s", err, out)
	}

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = filepath.Join("..", "..", "internal", "lint", "portnative", "testdata", "src", "flagged")
	vetOut, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on flagged fixture: want failure, got success\n%s", vetOut)
	}
	if !strings.Contains(string(vetOut), "legacy map Exchange") {
		t.Errorf("go vet output missing the portnative diagnostic:\n%s", vetOut)
	}
}
