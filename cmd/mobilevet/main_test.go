package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the mobilevet binary into a scratch dir.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mobilevet")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building mobilevet: %v\n%s", err, out)
	}
	return bin
}

// TestStandalone exercises the go list driver end to end: a clean package
// exits 0, a fixture with violations exits 1 and names them.
func TestStandalone(t *testing.T) {
	bin := buildTool(t)

	if out, err := exec.Command(bin, "mobilecongest/internal/vote").CombinedOutput(); err != nil {
		t.Errorf("clean package: want exit 0, got %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "./...")
	cmd.Dir = filepath.Join("..", "..", "internal", "lint", "portnative", "testdata", "src", "flagged")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("flagged fixture: want nonzero exit, got success\n%s", out)
	}
	if !strings.Contains(string(out), "legacy map Exchange") {
		t.Errorf("flagged fixture output missing the portnative diagnostic:\n%s", out)
	}

	// Disabling the only reporting analyzer must turn the run clean.
	cmd = exec.Command(bin, "-portnative=false", "./...")
	cmd.Dir = filepath.Join("..", "..", "internal", "lint", "portnative", "testdata", "src", "flagged")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Errorf("disabled analyzer: want exit 0, got %v\n%s", err, out)
	}
}

// TestVettoolProtocol exercises the go vet integration: the -V=full and
// -flags probes, then a real `go vet -vettool` run over clean and flagged
// packages.
func TestVettoolProtocol(t *testing.T) {
	bin := buildTool(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !strings.Contains(string(out), "mobilevet version") {
		t.Errorf("-V=full output %q lacks the version banner", out)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	for _, name := range []string{"detrand", "maprange", "obsreadonly", "portnative", "slabretain"} {
		if !strings.Contains(string(out), `"`+name+`"`) {
			t.Errorf("-flags output lacks analyzer flag %q:\n%s", name, out)
		}
	}

	if out, err := exec.Command("go", "vet", "-vettool="+bin, "mobilecongest/internal/vote").CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool on clean package: %v\n%s", err, out)
	}

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = filepath.Join("..", "..", "internal", "lint", "portnative", "testdata", "src", "flagged")
	vetOut, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on flagged fixture: want failure, got success\n%s", vetOut)
	}
	if !strings.Contains(string(vetOut), "legacy map Exchange") {
		t.Errorf("go vet output missing the portnative diagnostic:\n%s", vetOut)
	}
}
