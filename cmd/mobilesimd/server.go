package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	mc "mobilecongest"
)

// serverConfig bounds one mobilesimd instance.
type serverConfig struct {
	cache *mc.ResultCache
	// maxSweeps bounds concurrently executing sweep requests; further POSTs
	// get 429 until a slot frees.
	maxSweeps int
	// maxWorkers bounds the total worker goroutines across all in-flight
	// sweeps. A request's resolved worker count is clamped to what is left
	// of the budget; when nothing is left, 429.
	maxWorkers int
	// maxCells bounds one request's expansion; bigger specs get 413.
	maxCells int
	// maxBody bounds the spec body size.
	maxBody int64
}

func (c *serverConfig) defaults() {
	if c.maxSweeps <= 0 {
		c.maxSweeps = 4
	}
	if c.maxWorkers <= 0 {
		c.maxWorkers = runtime.GOMAXPROCS(0)
	}
	if c.maxCells <= 0 {
		c.maxCells = 1 << 20
	}
	if c.maxBody <= 0 {
		c.maxBody = 1 << 20
	}
}

// server is the sweep service: one process-wide result cache, an admission
// gate over sweeps and workers, and request counters behind /stats.
type server struct {
	cfg serverConfig

	mu             sync.Mutex
	inflightSweeps int
	inflightWorker int
	sweepsTotal    uint64
	sweepsRejected uint64
	recordsServed  uint64
	// latencies is a ring of recent whole-sweep latencies for the /stats
	// percentiles.
	latencies [1024]float64
	latCount  uint64
}

func newServer(cfg serverConfig) *server {
	cfg.defaults()
	if cfg.cache == nil {
		cfg.cache = mc.NewResultCache(0)
	}
	return &server{cfg: cfg}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/sweep", s.handleSweep)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// admit reserves one sweep slot and up to want workers, returning the
// granted worker count. ok=false means saturated: every sweep slot busy, or
// no worker budget left.
func (s *server) admit(want int) (granted int, ok bool) {
	if want <= 0 {
		want = runtime.GOMAXPROCS(0)
	}
	if want > s.cfg.maxWorkers {
		want = s.cfg.maxWorkers
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	free := s.cfg.maxWorkers - s.inflightWorker
	if s.inflightSweeps >= s.cfg.maxSweeps || free < 1 {
		s.sweepsRejected++
		return 0, false
	}
	if want > free {
		want = free
	}
	s.inflightSweeps++
	s.inflightWorker += want
	s.sweepsTotal++
	return want, true
}

// release returns an admitted sweep's slot and workers and records its
// latency and served-record count.
func (s *server) release(workers, served int, elapsed time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflightSweeps--
	s.inflightWorker -= workers
	s.recordsServed += uint64(served)
	s.latencies[s.latCount%uint64(len(s.latencies))] = float64(elapsed.Microseconds()) / 1000
	s.latCount++
}

// handleSweep accepts a PlanSpec and streams the sweep's records back as
// NDJSON, one line per cell as it finishes. The request context cancels the
// plan, so a disconnected client stops consuming workers after its
// in-flight cells drain.
func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a plan spec", http.StatusMethodNotAllowed)
		return
	}
	spec, err := mc.ReadPlanSpec(http.MaxBytesReader(w, r.Body, s.cfg.maxBody))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if cells := spec.Cells(); cells > s.cfg.maxCells {
		http.Error(w, fmt.Sprintf("spec expands to %d cells, server cap is %d", cells, s.cfg.maxCells), http.StatusRequestEntityTooLarge)
		return
	}
	plan, err := spec.Plan()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	workers, ok := s.admit(spec.Workers)
	if !ok {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server saturated: all sweep slots and workers busy", http.StatusTooManyRequests)
		return
	}
	start := time.Now()
	served := 0
	defer func() { s.release(workers, served, time.Since(start)) }()

	plan.Workers = workers
	plan.Cache = s.cfg.cache

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Sweep-Workers", fmt.Sprint(workers))
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for rec, err := range plan.Stream(r.Context()) {
		if err != nil {
			// Before the first record this is a plan configuration error and
			// the status line is still ours to set; mid-stream it is the
			// client's own cancellation.
			if served == 0 && r.Context().Err() == nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
			}
			return
		}
		if err := enc.Encode(rec); err != nil {
			return // client gone; ctx cancellation stops the plan
		}
		served++
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// statsReply is the /stats document.
type statsReply struct {
	Cache          mc.CacheStats `json:"cache"`
	HitRate        float64       `json:"cache_hit_rate"`
	SweepsInflight int           `json:"sweeps_inflight"`
	SweepsTotal    uint64        `json:"sweeps_total"`
	SweepsRejected uint64        `json:"sweeps_rejected"`
	WorkersInUse   int           `json:"workers_in_use"`
	WorkersMax     int           `json:"workers_max"`
	RecordsServed  uint64        `json:"records_served"`
	Latency        latencyReply  `json:"sweep_latency_ms"`
}

type latencyReply struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.cfg.cache.Stats()
	s.mu.Lock()
	reply := statsReply{
		Cache:          cs,
		SweepsInflight: s.inflightSweeps,
		SweepsTotal:    s.sweepsTotal,
		SweepsRejected: s.sweepsRejected,
		WorkersInUse:   s.inflightWorker,
		WorkersMax:     s.cfg.maxWorkers,
		RecordsServed:  s.recordsServed,
		Latency:        s.latencySnapshot(),
	}
	s.mu.Unlock()
	if lookups := cs.Hits + cs.Misses; lookups > 0 {
		reply.HitRate = float64(cs.Hits) / float64(lookups)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(reply)
}

// latencySnapshot computes percentiles over the retained ring. Callers hold
// s.mu.
func (s *server) latencySnapshot() latencyReply {
	n := s.latCount
	if n > uint64(len(s.latencies)) {
		n = uint64(len(s.latencies))
	}
	if n == 0 {
		return latencyReply{}
	}
	vals := append([]float64(nil), s.latencies[:n]...)
	sort.Float64s(vals)
	pick := func(p float64) float64 {
		i := int(p * float64(len(vals)-1))
		return vals[i]
	}
	return latencyReply{Count: s.latCount, P50: pick(0.50), P90: pick(0.90), P99: pick(0.99)}
}
