package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	mc "mobilecongest"
)

func testServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(cfg)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postSweep(t *testing.T, url, spec string) (int, string) {
	t.Helper()
	resp, err := http.Post(url+"/sweep", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func decodeRecords(t *testing.T, ndjson string) []mc.Record {
	t.Helper()
	var recs []mc.Record
	sc := bufio.NewScanner(strings.NewReader(ndjson))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var r mc.Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	return recs
}

const smallSpec = `{"topologies":["clique"],"ns":[8,12],"adversaries":["none","flip"],"fs":[2],"reps":2,"base_seed":7,"workers":1}`

// TestSweepStreamsPlanRecords pins the endpoint against the library: the
// streamed NDJSON is exactly the spec's Plan.Run record set, in grid order
// under workers:1 (timing aside).
func TestSweepStreamsPlanRecords(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	code, body := postSweep(t, ts.URL, smallSpec)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	got := decodeRecords(t, body)

	spec, err := mc.ParsePlanSpec([]byte(smallSpec))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d records, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		g.ElapsedMS, w.ElapsedMS = 0, 0
		gj, _ := json.Marshal(g)
		wj, _ := json.Marshal(w)
		if !bytes.Equal(gj, wj) {
			t.Fatalf("record %d differs:\nserver: %s\nlocal:  %s", i, gj, wj)
		}
	}
}

// TestRepeatSweepServedFromCache pins the memoization contract end to end:
// the second identical POST replays the cached records byte-for-byte —
// including the first run's timings — and /stats reports the hits.
func TestRepeatSweepServedFromCache(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	code, first := postSweep(t, ts.URL, smallSpec)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, first)
	}
	code, second := postSweep(t, ts.URL, smallSpec)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, second)
	}
	if first != second {
		t.Fatalf("cached replay not byte-identical:\nfirst:  %s\nsecond: %s", first, second)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsReply
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	cells := uint64(len(decodeRecords(t, first)))
	if stats.Cache.Hits != cells {
		t.Fatalf("hits = %d, want %d (stats %+v)", stats.Cache.Hits, cells, stats)
	}
	if stats.HitRate != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", stats.HitRate)
	}
	if stats.RecordsServed != 2*cells || stats.SweepsTotal != 2 || stats.SweepsInflight != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Latency.Count != 2 {
		t.Fatalf("latency ring missed sweeps: %+v", stats.Latency)
	}
}

// TestSweepRejections covers the refusal paths: bad method, malformed and
// misnamed specs, and the cell cap.
func TestSweepRejections(t *testing.T) {
	_, ts := testServer(t, serverConfig{maxCells: 16})
	if resp, err := http.Get(ts.URL + "/sweep"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /sweep = %d", resp.StatusCode)
		}
	}
	for name, c := range map[string]struct {
		spec string
		code int
	}{
		"malformed":    {`{"ns":`, http.StatusBadRequest},
		"unknown-name": {`{"topologies":["moebius"]}`, http.StatusBadRequest},
		"p-no-proto":   {`{"ps":[3]}`, http.StatusBadRequest},
		"too-many":     {`{"ns":[4],"reps":17}`, http.StatusRequestEntityTooLarge},
	} {
		t.Run(name, func(t *testing.T) {
			code, body := postSweep(t, ts.URL, c.spec)
			if code != c.code {
				t.Fatalf("status %d (want %d): %s", code, c.code, body)
			}
		})
	}
}

// TestAdmissionControl pins the 429 contract: a saturated server refuses
// promptly with Retry-After, and frees capacity once sweeps release.
func TestAdmissionControl(t *testing.T) {
	s, ts := testServer(t, serverConfig{maxSweeps: 1, maxWorkers: 2})

	// Occupy the only sweep slot.
	granted, ok := s.admit(8)
	if !ok {
		t.Fatal("admit on idle server refused")
	}
	if granted != 2 {
		t.Fatalf("granted %d workers, budget is 2", granted)
	}
	resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(smallSpec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated POST = %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	s.release(granted, 0, time.Millisecond)
	if code, body := postSweep(t, ts.URL, smallSpec); code != http.StatusOK {
		t.Fatalf("POST after release = %d: %s", code, body)
	}

	// Worker budget accounting: refused sweeps must not leak workers.
	s.mu.Lock()
	inflight, workers := s.inflightSweeps, s.inflightWorker
	rejected := s.sweepsRejected
	s.mu.Unlock()
	if inflight != 0 || workers != 0 || rejected != 1 {
		t.Fatalf("leaked admission state: sweeps=%d workers=%d rejected=%d", inflight, workers, rejected)
	}
}

// TestWorkerBudgetClamping: a sweep asking for more workers than the free
// budget is clamped, not refused, and the grant is visible to the client.
func TestWorkerBudgetClamping(t *testing.T) {
	_, ts := testServer(t, serverConfig{maxWorkers: 3})
	resp, err := http.Post(ts.URL+"/sweep", "application/json",
		strings.NewReader(`{"ns":[8],"workers":64}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Sweep-Workers"); got != "3" {
		t.Fatalf("X-Sweep-Workers = %q, want 3", got)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
}

// TestClientDisconnectReleases pins cancellation: a client that walks away
// mid-stream frees its sweep slot and workers.
func TestClientDisconnectReleases(t *testing.T) {
	s, ts := testServer(t, serverConfig{maxSweeps: 2})
	ctx, cancel := context.WithCancel(context.Background())
	// A sweep big enough to still be streaming when we bail: 64 cells of
	// circulant256 floodmax.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/sweep",
		strings.NewReader(`{"topologies":["circulant"],"ns":[256],"reps":64,"workers":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one record, then vanish.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		inflight, workers := s.inflightSweeps, s.inflightWorker
		s.mu.Unlock()
		if inflight == 0 && workers == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never released after disconnect: sweeps=%d workers=%d", inflight, workers)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentClientsSharedCache fans 8 clients with overlapping sweeps
// against one server and one shared cache — the race-detector leg of the
// cache correctness satellite. Every response must decode to the right cell
// set regardless of which client's run populated which cache entry.
func TestConcurrentClientsSharedCache(t *testing.T) {
	_, ts := testServer(t, serverConfig{maxSweeps: 8, maxWorkers: 8})
	specs := [8]string{}
	for i := range specs {
		// Overlapping grids: all clients share the clique8/clique12 cells,
		// half also sweep flip, half sweep n=16.
		extra := `"ns":[8,12]`
		if i%2 == 1 {
			extra = `"ns":[8,12,16]`
		}
		adv := `"adversaries":["none"]`
		if i%4 >= 2 {
			adv = `"adversaries":["none","flip"]`
		}
		specs[i] = fmt.Sprintf(`{%s,%s,"fs":[2],"reps":2,"base_seed":7}`, extra, adv)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(specs))
	for _, spec := range specs {
		wg.Add(1)
		go func(spec string) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(spec))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			sp, _ := mc.ParsePlanSpec([]byte(spec))
			var lines int
			for _, l := range strings.Split(strings.TrimSpace(string(body)), "\n") {
				var r mc.Record
				if err := json.Unmarshal([]byte(l), &r); err != nil {
					errs <- fmt.Errorf("bad line %q: %v", l, err)
					return
				}
				if r.Error != "" {
					errs <- fmt.Errorf("cell %s failed: %s", r.Name, r.Error)
					return
				}
				lines++
			}
			if lines != sp.Cells() {
				errs <- fmt.Errorf("got %d records for %d cells", lines, sp.Cells())
			}
		}(spec)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
