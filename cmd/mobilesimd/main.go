// Command mobilesimd serves parameter sweeps over HTTP: a long-running
// frontend over the experiment Plan API with a process-wide content-
// addressed result cache, so repeated and overlapping sweeps from any
// number of clients cost one computation per distinct cell.
//
//	mobilesimd -addr :9070
//	mobilesimd -addr :9070 -cache /var/lib/mobilesim-cache -cache-bytes 268435456
//	mobilesimd -max-sweeps 8 -max-workers 16
//
// Endpoints:
//
//	POST /sweep    body: a PlanSpec JSON document (the JSON mirror of the
//	               Plan axis constructors — topologies/ns/ks/protocols/ps/
//	               adversaries/fs/engines/bandwidths/reps plus base_seed,
//	               max_rounds, workers). Streams one record per line
//	               (NDJSON) as cells finish; set "workers":1 for grid
//	               order. Cells already in the cache are served without
//	               recomputation. 400 on malformed or misnamed specs, 413
//	               past the cell cap, 429 when saturated (Retry-After: 1).
//	GET  /stats    cache hit/miss/eviction counters and hit rate, in-flight
//	               sweeps, worker usage, served records, and whole-sweep
//	               latency percentiles.
//	GET  /healthz  liveness.
//
// Admission control: at most -max-sweeps requests execute concurrently and
// their worker pools never exceed -max-workers in total; a request's
// requested (or defaulted) worker count is clamped to the free share of the
// budget. Disconnecting a client cancels its sweep through the Plan's
// context plumbing — in-flight cells drain, nothing leaks.
//
// Results are cached content-addressed by (cell label, seed, engine, code
// version), so a rebuilt binary never serves stale records; with -cache the
// entries also persist to an append-only JSONL file shared with
// `mobilesim -sweep -cache`.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	mc "mobilecongest"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, serves until SIGINT or
// SIGTERM, and writes to the given streams instead of the process globals.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mobilesimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":9070", "listen address")
	cacheDir := fs.String("cache", "", "persist the result cache to this directory (JSONL disk tier; empty = memory only)")
	cacheBytes := fs.Int64("cache-bytes", 256<<20, "in-memory result cache budget in bytes (0 = unbounded)")
	maxSweeps := fs.Int("max-sweeps", 4, "concurrently executing sweep requests before 429")
	maxWorkers := fs.Int("max-workers", 0, "total worker goroutines across all sweeps (0 = GOMAXPROCS)")
	maxCells := fs.Int("max-cells", 1<<20, "largest accepted per-request cell expansion")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	var cache *mc.ResultCache
	var err error
	if *cacheDir != "" {
		cache, err = mc.OpenResultCache(*cacheBytes, *cacheDir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer cache.Close()
	} else {
		cache = mc.NewResultCache(*cacheBytes)
	}

	srv := newServer(serverConfig{
		cache:      cache,
		maxSweeps:  *maxSweeps,
		maxWorkers: *maxWorkers,
		maxCells:   *maxCells,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(stdout, "mobilesimd serving on %s (cache version %s)\n", *addr, cache.Version())

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, err)
		return 1
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	s := cache.Stats()
	fmt.Fprintf(stdout, "mobilesimd stopped: %d hits, %d misses, %d entries cached\n", s.Hits, s.Misses, s.Entries)
	return 0
}
