// Command mobilesim runs the reproduction experiment suite — one experiment
// per theorem of "Distributed CONGEST Algorithms against Mobile Adversaries"
// (Fischer-Parter, PODC 2023) — and ad-hoc parameter sweeps over the
// simulator's scenario grid.
//
// Experiment mode (default): each experiment prints a table whose shape is
// checked against the theorem's claim.
//
//	mobilesim                 # run every experiment
//	mobilesim -list           # list experiments, engines, topologies, adversaries
//	mobilesim -run T1,F3      # run a subset
//	mobilesim -seed 7         # change the master seed
//	mobilesim -engine goroutine  # pick the execution engine
//	mobilesim -engine shard -shards 4  # shard engine with a fixed shard count
//
// The engines are "step" (default; coroutine steps on one scheduler
// goroutine), "goroutine" (goroutine per node), and "shard" (the step
// engine's coroutines fanned over contiguous CSR node shards on a worker
// pool — the engine for large n on multi-core hosts). -shards fixes the
// shard engine's shard/worker count; 0 keeps the GOMAXPROCS default. All
// engines produce byte-identical results for the same seed.
//
// Sweep mode: -sweep builds an experiment Plan (cross product of the axis
// flags — including the protocol registry axis via -proto), fans the cells
// out across -workers workers with deterministic per-cell seeds (each worker
// reusing one run context across its cells), and streams one JSON record per
// line on stdout *as cells complete* (run -workers 1 for in-order output).
// -summary replaces the per-cell stream with post-sweep aggregates: one JSON
// line per cell group, with mean/stddev/min/max over the -reps repetitions.
//
// -bandwidth adds an enforced per-edge-per-round bit-budget axis (0 =
// unlimited); cells whose protocol oversends fail with the deterministic
// congest bandwidth error in their record.
//
// -cache reuses a persistent result cache across invocations: every cell is
// deterministic in its (label, seed, engine, code version) address, so a
// repeated or overlapping sweep replays previously computed records from
// the cache directory's JSONL tier instead of recomputing them (the same
// cache directory cmd/mobilesimd serves from). The hit/miss tally lands on
// stderr after the sweep. Cells attached to a -trace observer always
// recompute — a replayed record has no rounds to trace.
//
//	mobilesim -sweep -topo clique,circulant -n 8,16,32 -adv none,flip -f 2
//	mobilesim -sweep -proto bfs,mstclique -topo clique -n 16,32 -reps 3
//	mobilesim -sweep -n 32 -bandwidth 0,64,256 | jq '{name, error}'
//	mobilesim -sweep -n 64 -engine step,goroutine -reps 5 -summary | jq .rounds.mean
//	mobilesim -sweep -n 64 -workers 1 | jq .rounds
//	mobilesim -sweep -n 4096 -reps 8 -cache ~/.cache/mobilesim  # 2nd run: all hits
//
// Trace mode: -trace out.jsonl streams every simulated round as one JSON
// line (delivered messages with base64 payloads, plus corrupted edges and a
// per-run summary line) while the runs execute. It composes with both modes:
// in experiment mode every simulation of the suite is traced; in sweep mode
// every grid cell is, labeled by its cell name.
//
//	mobilesim -run T1 -trace t1.jsonl
//	mobilesim -sweep -n 16 -adv flip -trace - | jq .corrupted
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"

	mc "mobilecongest"

	"mobilecongest/internal/harness"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args and writes to the given
// streams instead of touching the process globals.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mobilesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list experiments and registries, then exit")
	only := fs.String("run", "", "comma-separated experiment IDs (default: all)")
	seed := fs.Int64("seed", 42, "master random seed (sweep: base seed)")
	engine := fs.String("engine", mc.EngineStep.Name(), "execution engine (sweep: comma-separated list)")
	shards := fs.Int("shards", 0, "shard count for the shard engine (0 = GOMAXPROCS)")
	sweep := fs.Bool("sweep", false, "run a parameter sweep instead of the experiment suite")
	topo := fs.String("topo", "clique", "sweep: comma-separated topology names")
	ns := fs.String("n", "16", "sweep: comma-separated node counts")
	ks := fs.String("k", "0", "sweep: comma-separated topology parameters (0 = family default)")
	proto := fs.String("proto", "", "sweep: comma-separated protocol registry names (empty = default floodmax workload)")
	adv := fs.String("adv", "none", "sweep: comma-separated adversary names")
	fstr := fs.String("f", "1", "sweep: comma-separated adversary strengths")
	bandwidth := fs.String("bandwidth", "", "sweep: comma-separated enforced bits/edge/round budgets (0 = unlimited; empty = no bandwidth axis)")
	reps := fs.Int("reps", 1, "sweep: repetitions per cell with distinct seeds")
	maxRounds := fs.Int("maxrounds", 0, "sweep: per-run round limit (0 = engine default)")
	workers := fs.Int("workers", 0, "sweep: concurrent cell runners (0 = GOMAXPROCS; 1 streams in grid order)")
	summary := fs.Bool("summary", false, "sweep: emit per-cell aggregates over reps instead of per-rep records")
	cacheDir := fs.String("cache", "", "sweep: reuse a persistent result cache at this directory (hit tally on stderr)")
	tracePath := fs.String("trace", "", "stream per-round traffic as JSONL to this file (- for stdout)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	// Reject cross-mode flag mixes instead of silently ignoring them: -run
	// belongs to experiment mode, the axis flags to sweep mode (-trace works
	// in both). -list overrides both modes, so any combination with it just
	// lists.
	if !*list {
		sweepOnly := map[string]bool{"topo": true, "n": true, "k": true, "proto": true, "adv": true, "f": true, "bandwidth": true, "reps": true, "maxrounds": true, "workers": true, "summary": true, "cache": true}
		conflict := ""
		fs.Visit(func(fl *flag.Flag) {
			switch {
			case *sweep && fl.Name == "run":
				conflict = "-run selects experiments and has no effect with -sweep"
			case !*sweep && sweepOnly[fl.Name]:
				conflict = fmt.Sprintf("-%s is a sweep axis flag; add -sweep (or drop it)", fl.Name)
			}
		})
		if conflict != "" {
			fmt.Fprintln(stderr, conflict)
			return 2
		}
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		fmt.Fprintf(stdout, "\nengines:     %s\n", strings.Join(mc.EngineNames(), ", "))
		fmt.Fprintf(stdout, "topologies:  %s\n", strings.Join(mc.Topologies(), ", "))
		fmt.Fprintf(stdout, "protocols:   %s\n", strings.Join(mc.Protocols(), ", "))
		fmt.Fprintf(stdout, "adversaries: %s\n", strings.Join(mc.Adversaries(), ", "))
		return 0
	}

	if *shards < 0 {
		fmt.Fprintln(stderr, "-shards must be >= 0")
		return 2
	}
	if *shards > 0 {
		// Re-register "shard" with the fixed count so every resolution by
		// name — -engine here, the sweep's engine axis, experiments — uses
		// it; restore the automatic default on the way out (run is a
		// testable entry point, so it must not leak registry state).
		mc.RegisterEngine(mc.NewShardEngine(*shards))
		defer mc.RegisterEngine(mc.NewShardEngine(0))
	}

	var sink *traceSink
	if *tracePath != "" {
		sink = newTraceSink(*tracePath, stdout)
	}

	var code int
	if *sweep {
		code = runSweep(sweepFlags{
			topos: *topo, ns: *ns, ks: *ks, protos: *proto, advs: *adv, fs: *fstr,
			bandwidths: *bandwidth,
			engines:    *engine, reps: *reps, baseSeed: *seed, maxRounds: *maxRounds,
			workers: *workers, summary: *summary, cacheDir: *cacheDir,
		}, sink, stdout, stderr)
	} else {
		code = runExperiments(*only, *seed, *engine, sink, stdout, stderr)
	}
	if sink != nil {
		if err := sink.finish(); err != nil {
			fmt.Fprintf(stderr, "trace: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}
	return code
}

func runExperiments(only string, seed int64, engine string, sink *traceSink, stdout, stderr io.Writer) int {
	if err := harness.UseEngine(engine); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if sink != nil {
		runSeq := 0
		harness.UseObservers(func() []mc.Observer {
			runSeq++
			return []mc.Observer{sink.observer(fmt.Sprintf("run%04d", runSeq))}
		})
		defer harness.UseObservers(nil)
	}
	var todo []harness.Experiment
	if only == "" {
		todo = harness.All()
	} else {
		for _, id := range strings.Split(only, ",") {
			id = strings.TrimSpace(id)
			e, ok := harness.Get(id)
			if !ok {
				fmt.Fprintf(stderr, "unknown experiment %q (use -list)\n", id)
				return 2
			}
			todo = append(todo, e)
		}
	}

	failures := 0
	for _, e := range todo {
		tb, err := e.Run(seed)
		if err != nil {
			fmt.Fprintf(stderr, "%s: error: %v\n", e.ID, err)
			failures++
			continue
		}
		fmt.Fprintln(stdout, tb.Render())
		if !tb.Pass {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "%d experiment(s) failed\n", failures)
		return 1
	}
	fmt.Fprintf(stdout, "all %d experiments match their claims\n", len(todo))
	return 0
}

// traceSink manages the -trace stream: it serializes Write calls from
// concurrently-traced runs (each JSONL line is a single Write), creates the
// file lazily on the first line (so configuration errors never clobber an
// existing trace), and tracks every observer it hands out so write, encode,
// and close failures — which per-run observers have no path to report — can
// surface in the exit code at finish.
type traceSink struct {
	mu        sync.Mutex
	path      string // "" means stream to stdout
	stdout    io.Writer
	f         *os.File
	werr      error
	observers []*mc.JSONLTrace
}

func newTraceSink(path string, stdout io.Writer) *traceSink {
	s := &traceSink{path: path, stdout: stdout}
	if path == "-" {
		s.path = ""
	}
	return s
}

func (s *traceSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.stdout
	if s.path != "" {
		if s.f == nil && s.werr == nil {
			s.f, s.werr = os.Create(s.path)
		}
		if s.werr != nil {
			return 0, s.werr
		}
		w = s.f
	}
	n, err := w.Write(p)
	if err != nil && s.werr == nil {
		s.werr = err
	}
	return n, err
}

// observer hands out a labeled JSONL observer writing to this sink.
func (s *traceSink) observer(label string) mc.Observer {
	jt := mc.NewJSONLTrace(s, label)
	s.mu.Lock()
	s.observers = append(s.observers, jt)
	s.mu.Unlock()
	return jt
}

// finish closes the stream and reports the first failure anywhere in it.
func (s *traceSink) finish() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		if err := s.f.Close(); err != nil && s.werr == nil {
			s.werr = err
		}
		s.f = nil
	}
	if s.werr != nil {
		return s.werr
	}
	for _, jt := range s.observers {
		if err := jt.Err(); err != nil {
			return err
		}
	}
	return nil
}

type sweepFlags struct {
	topos, ns, ks, protos, advs, fs, engines string
	bandwidths                               string
	reps                                     int
	baseSeed                                 int64
	maxRounds                                int
	workers                                  int
	summary                                  bool
	cacheDir                                 string
}

// plan lowers the axis flags onto an experiment Plan, with the protocol
// registry axis slotted between the topology and adversary coordinates
// (the canonical label order).
func (sf sweepFlags) plan(sink *traceSink) (mc.Plan, error) {
	nsList, err1 := splitInts(sf.ns)
	ksList, err2 := splitInts(sf.ks)
	fsList, err3 := splitInts(sf.fs)
	for _, err := range []error{err1, err2, err3} {
		if err != nil {
			return mc.Plan{}, err
		}
	}
	axes := []mc.Axis{
		mc.TopologyAxis(splitNames(sf.topos)...),
		mc.NAxis(nsList...),
		mc.KAxis(ksList...),
	}
	if protos := splitNames(sf.protos); len(protos) > 0 {
		axes = append(axes, mc.ProtocolAxis(protos...))
	}
	axes = append(axes,
		mc.AdversaryAxis(splitNames(sf.advs)...),
		mc.FAxis(fsList...),
		mc.EngineAxis(splitNames(sf.engines)...),
	)
	if sf.bandwidths != "" {
		bwList, err := splitInts(sf.bandwidths)
		if err != nil {
			return mc.Plan{}, err
		}
		// Like the engine axis, the budget is slotted after the seed-relevant
		// coordinates: it labels records and names but never perturbs seeds.
		axes = append(axes, mc.BandwidthAxis(bwList...))
	}
	axes = append(axes, mc.RepsAxis(sf.reps))
	plan := mc.Plan{
		Axes:      axes,
		BaseSeed:  sf.baseSeed,
		MaxRounds: sf.maxRounds,
		Workers:   sf.workers,
	}
	if sink != nil {
		plan.Observers = func(cellName string) []mc.Observer {
			return []mc.Observer{sink.observer(cellName)}
		}
	}
	return plan, nil
}

// runSweep streams the plan's records as cells complete — one JSON line each
// (grid order under -workers 1, completion order otherwise) — or, with
// -summary, runs the plan to completion and emits one aggregate JSON line
// per cell group, in the plan's cross-product order.
func runSweep(sf sweepFlags, sink *traceSink, stdout, stderr io.Writer) int {
	plan, err := sf.plan(sink)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if sf.cacheDir != "" {
		cache, err := mc.OpenResultCache(256<<20, sf.cacheDir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		plan.Cache = cache
		defer func() {
			s := cache.Stats()
			if err := cache.Close(); err != nil {
				fmt.Fprintf(stderr, "cache: %v\n", err)
			}
			fmt.Fprintf(stderr, "cache: %d hits, %d misses (%d entries, version %s)\n",
				s.Hits, s.Misses, s.Entries, s.Version)
		}()
	}
	enc := json.NewEncoder(stdout)
	failed, total := 0, 0
	if sf.summary {
		// Plan.Run returns grid order regardless of worker scheduling, so
		// the summaries come out in the axes' natural order.
		records, err := plan.Run(context.Background())
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		total = len(records)
		for _, r := range records {
			if r.Error != "" {
				failed++
			}
		}
		for _, s := range mc.Summarize(records) {
			if err := enc.Encode(s); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
	} else {
		for r, err := range plan.Stream(context.Background()) {
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			total++
			if r.Error != "" {
				failed++
			}
			if err := enc.Encode(r); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "%d/%d sweep cells failed\n", failed, total)
		return 1
	}
	return 0
}

func splitNames(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitNames(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}
