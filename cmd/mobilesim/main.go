// Command mobilesim runs the reproduction experiment suite: one experiment
// per theorem of "Distributed CONGEST Algorithms against Mobile Adversaries"
// (Fischer-Parter, PODC 2023). Each experiment prints a table whose shape is
// checked against the theorem's claim.
//
// Usage:
//
//	mobilesim                 # run every experiment
//	mobilesim -list           # list experiment IDs
//	mobilesim -run T1,F3      # run a subset
//	mobilesim -seed 7         # change the master seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mobilecongest/internal/harness"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list experiments and exit")
	only := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	seed := flag.Int64("seed", 42, "master random seed")
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}

	var todo []harness.Experiment
	if *only == "" {
		todo = harness.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := harness.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				return 2
			}
			todo = append(todo, e)
		}
	}

	failures := 0
	for _, e := range todo {
		tb, err := e.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: error: %v\n", e.ID, err)
			failures++
			continue
		}
		fmt.Println(tb.Render())
		if !tb.Pass {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failures)
		return 1
	}
	fmt.Printf("all %d experiments match their claims\n", len(todo))
	return 0
}
