// Command mobilesim runs the reproduction experiment suite — one experiment
// per theorem of "Distributed CONGEST Algorithms against Mobile Adversaries"
// (Fischer-Parter, PODC 2023) — and ad-hoc parameter sweeps over the
// simulator's scenario grid.
//
// Experiment mode (default): each experiment prints a table whose shape is
// checked against the theorem's claim.
//
//	mobilesim                 # run every experiment
//	mobilesim -list           # list experiments, engines, topologies, adversaries
//	mobilesim -run T1,F3      # run a subset
//	mobilesim -seed 7         # change the master seed
//	mobilesim -engine goroutine  # pick the execution engine
//
// Sweep mode: -sweep expands a parameter grid (cross product of the axis
// flags), fans the cells out across GOMAXPROCS workers with deterministic
// per-cell seeds, and emits one JSON record per line on stdout.
//
//	mobilesim -sweep -topo clique,circulant -n 8,16,32 -adv none,flip -f 2
//	mobilesim -sweep -n 64 -engine step,goroutine -reps 3 | jq .rounds
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	mc "mobilecongest"

	"mobilecongest/internal/harness"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list experiments and registries, then exit")
	only := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	seed := flag.Int64("seed", 42, "master random seed (sweep: base seed)")
	engine := flag.String("engine", mc.EngineStep.Name(), "execution engine (sweep: comma-separated list)")
	sweep := flag.Bool("sweep", false, "run a parameter sweep instead of the experiment suite")
	topo := flag.String("topo", "clique", "sweep: comma-separated topology names")
	ns := flag.String("n", "16", "sweep: comma-separated node counts")
	ks := flag.String("k", "0", "sweep: comma-separated topology parameters (0 = family default)")
	adv := flag.String("adv", "none", "sweep: comma-separated adversary names")
	fs := flag.String("f", "1", "sweep: comma-separated adversary strengths")
	reps := flag.Int("reps", 1, "sweep: repetitions per cell with distinct seeds")
	maxRounds := flag.Int("maxrounds", 0, "sweep: per-run round limit (0 = engine default)")
	flag.Parse()

	// Reject cross-mode flag mixes instead of silently ignoring them: -run
	// belongs to experiment mode, the axis flags to sweep mode. -list
	// overrides both modes, so any combination with it just lists.
	if !*list {
		sweepOnly := map[string]bool{"topo": true, "n": true, "k": true, "adv": true, "f": true, "reps": true, "maxrounds": true}
		conflict := ""
		flag.Visit(func(fl *flag.Flag) {
			switch {
			case *sweep && fl.Name == "run":
				conflict = "-run selects experiments and has no effect with -sweep"
			case !*sweep && sweepOnly[fl.Name]:
				conflict = fmt.Sprintf("-%s is a sweep axis flag; add -sweep (or drop it)", fl.Name)
			}
		})
		if conflict != "" {
			fmt.Fprintln(os.Stderr, conflict)
			return 2
		}
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		fmt.Printf("\nengines:     %s\n", strings.Join(mc.EngineNames(), ", "))
		fmt.Printf("topologies:  %s\n", strings.Join(mc.Topologies(), ", "))
		fmt.Printf("adversaries: %s\n", strings.Join(mc.Adversaries(), ", "))
		return 0
	}

	if *sweep {
		return runSweep(sweepFlags{
			topos: *topo, ns: *ns, ks: *ks, advs: *adv, fs: *fs,
			engines: *engine, reps: *reps, baseSeed: *seed, maxRounds: *maxRounds,
		})
	}

	if err := harness.UseEngine(*engine); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var todo []harness.Experiment
	if *only == "" {
		todo = harness.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := harness.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				return 2
			}
			todo = append(todo, e)
		}
	}

	failures := 0
	for _, e := range todo {
		tb, err := e.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: error: %v\n", e.ID, err)
			failures++
			continue
		}
		fmt.Println(tb.Render())
		if !tb.Pass {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failures)
		return 1
	}
	fmt.Printf("all %d experiments match their claims\n", len(todo))
	return 0
}

type sweepFlags struct {
	topos, ns, ks, advs, fs, engines string
	reps                             int
	baseSeed                         int64
	maxRounds                        int
}

func runSweep(sf sweepFlags) int {
	nsList, err1 := splitInts(sf.ns)
	ksList, err2 := splitInts(sf.ks)
	fsList, err3 := splitInts(sf.fs)
	for _, err := range []error{err1, err2, err3} {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	records, err := mc.Sweep(mc.Grid{
		Topologies:  splitNames(sf.topos),
		Ns:          nsList,
		Ks:          ksList,
		Adversaries: splitNames(sf.advs),
		Fs:          fsList,
		Engines:     splitNames(sf.engines),
		Reps:        sf.reps,
		BaseSeed:    sf.baseSeed,
		MaxRounds:   sf.maxRounds,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	enc := json.NewEncoder(os.Stdout)
	failed := 0
	for _, r := range records {
		if r.Error != "" {
			failed++
		}
		if err := enc.Encode(r); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d/%d sweep cells failed\n", failed, len(records))
		return 1
	}
	return 0
}

func splitNames(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitNames(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}
