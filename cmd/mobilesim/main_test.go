package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

// TestListDeterministicAndSorted locks the -list contract: repeated
// invocations emit byte-identical output, experiment IDs come out in sorted
// order, and every registry listing (engines, topologies, protocols,
// adversaries) is sorted — no map-iteration order may leak into the CLI.
func TestListDeterministicAndSorted(t *testing.T) {
	out1, _, code := runCapture(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	out2, _, _ := runCapture(t, "-list")
	if out1 != out2 {
		t.Fatalf("-list output not deterministic:\n%s\n---\n%s", out1, out2)
	}

	listings := map[string]bool{}
	var expIDs []string
	for _, line := range strings.Split(out1, "\n") {
		switch {
		case strings.HasPrefix(line, "engines:"), strings.HasPrefix(line, "topologies:"),
			strings.HasPrefix(line, "protocols:"), strings.HasPrefix(line, "adversaries:"):
			listings[strings.SplitN(line, ":", 2)[0]] = true
			_, list, _ := strings.Cut(line, ":")
			names := strings.Split(strings.TrimSpace(list), ", ")
			if len(names) == 0 {
				t.Fatalf("empty registry listing: %q", line)
			}
			if !sort.StringsAreSorted(names) {
				t.Fatalf("registry listing not sorted: %q", line)
			}
		case line != "" && !strings.HasPrefix(line, " "):
			expIDs = append(expIDs, strings.Fields(line)[0])
		}
	}
	if len(expIDs) < 10 {
		t.Fatalf("only %d experiments listed:\n%s", len(expIDs), out1)
	}
	if !sort.StringsAreSorted(expIDs) {
		t.Fatalf("experiment IDs not sorted: %v", expIDs)
	}
	if len(listings) != 4 {
		t.Fatalf("want 4 registry listings (engines, topologies, protocols, adversaries), got %v", listings)
	}
	if !strings.Contains(out1, "protocols:") || !strings.Contains(out1, "mstclique") {
		t.Fatalf("protocol registry missing from -list:\n%s", out1)
	}
}

// TestCrossModeFlagConflicts: axis flags without -sweep, and -run with
// -sweep, are rejected rather than silently ignored.
func TestCrossModeFlagConflicts(t *testing.T) {
	if _, msg, code := runCapture(t, "-n", "8"); code != 2 || !strings.Contains(msg, "sweep axis flag") {
		t.Fatalf("axis flag without -sweep: code %d, msg %q", code, msg)
	}
	if _, msg, code := runCapture(t, "-sweep", "-run", "T1"); code != 2 || !strings.Contains(msg, "no effect") {
		t.Fatalf("-run with -sweep: code %d, msg %q", code, msg)
	}
}

// TestSweepTraceJSONL: -sweep -trace streams one valid JSON line per round
// per cell plus one summary line per cell, labeled by cell name, while the
// records still go to stdout.
func TestSweepTraceJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	out, errb, code := runCapture(t, "-sweep", "-n", "6", "-adv", "none,flip", "-trace", path)
	if code != 0 {
		t.Fatalf("sweep exited %d: %s", code, errb)
	}
	// Records on stdout, one JSON object per line.
	recLines := strings.Split(strings.TrimSpace(out), "\n")
	if len(recLines) != 2 {
		t.Fatalf("want 2 records, got %d", len(recLines))
	}
	rounds := 0
	for _, line := range recLines {
		var rec struct {
			Rounds int    `json:"rounds"`
			Name   string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("record not JSON: %v\n%s", err, line)
		}
		rounds += rec.Rounds
	}
	// Trace file: every line valid JSON; per-cell summary lines present.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if want := rounds + 2; len(lines) != want {
		t.Fatalf("trace has %d lines, want %d rounds + 2 summaries", len(lines), rounds)
	}
	doneCells := map[string]bool{}
	for _, line := range lines {
		var row struct {
			Scenario string `json:"scenario"`
			Done     bool   `json:"done"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("trace line not JSON: %v\n%s", err, line)
		}
		if row.Scenario == "" {
			t.Fatalf("trace line missing cell label: %s", line)
		}
		if row.Done {
			doneCells[row.Scenario] = true
		}
	}
	if len(doneCells) != 2 {
		t.Fatalf("want 2 cell summaries, got %v", doneCells)
	}
}

// TestSweepProtocolAxis: -proto runs a protocol-registry axis end-to-end by
// name, stamping the protocol coordinate into every record, and -workers 1
// streams the records in deterministic grid order.
func TestSweepProtocolAxis(t *testing.T) {
	out, errb, code := runCapture(t,
		"-sweep", "-topo", "clique", "-n", "8", "-proto", "bfs,mstclique",
		"-reps", "2", "-workers", "1", "-seed", "5")
	if code != 0 {
		t.Fatalf("sweep exited %d: %s", code, errb)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 records (2 protocols x 2 reps), got %d", len(lines))
	}
	wantProtos := []string{"bfs", "bfs", "mstclique", "mstclique"}
	for i, line := range lines {
		var rec struct {
			Protocol string `json:"protocol"`
			Rounds   int    `json:"rounds"`
			Error    string `json:"error"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("record not JSON: %v\n%s", err, line)
		}
		if rec.Error != "" {
			t.Fatalf("cell failed: %s", rec.Error)
		}
		if rec.Protocol != wantProtos[i] {
			t.Fatalf("record %d protocol = %q, want %q (workers=1 must stream in grid order)", i, rec.Protocol, wantProtos[i])
		}
		if rec.Rounds <= 0 {
			t.Fatalf("record %d has no rounds: %s", i, line)
		}
	}
	// Streamed output is deterministic under -workers 1.
	out2, _, _ := runCapture(t,
		"-sweep", "-topo", "clique", "-n", "8", "-proto", "bfs,mstclique",
		"-reps", "2", "-workers", "1", "-seed", "5")
	stripElapsed := func(s string) string {
		var b strings.Builder
		for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
			var m map[string]any
			if err := json.Unmarshal([]byte(line), &m); err != nil {
				t.Fatal(err)
			}
			delete(m, "elapsed_ms")
			enc, _ := json.Marshal(m)
			b.Write(enc)
			b.WriteByte('\n')
		}
		return b.String()
	}
	if stripElapsed(out) != stripElapsed(out2) {
		t.Fatalf("-workers 1 streaming not deterministic:\n%s\n---\n%s", out, out2)
	}
	// Unknown protocol names are rejected up front.
	if _, errb, code := runCapture(t, "-sweep", "-proto", "nosuch"); code != 2 || !strings.Contains(errb, "unknown protocol") {
		t.Fatalf("unknown -proto: code %d, msg %q", code, errb)
	}
}

// TestSweepSummary: -summary replaces per-rep records with one aggregate
// JSON line per cell group, emitted in the plan's grid order (cycle before
// clique here — axis value order, not lexicographic).
func TestSweepSummary(t *testing.T) {
	out, errb, code := runCapture(t,
		"-sweep", "-topo", "cycle,clique", "-n", "8", "-reps", "3", "-summary", "-seed", "4")
	if code != 0 {
		t.Fatalf("sweep exited %d: %s", code, errb)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 summary lines (one per topology), got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], `"topology":"cycle"`) || !strings.Contains(lines[1], `"topology":"clique"`) {
		t.Fatalf("summaries not in grid order:\n%s", out)
	}
	for _, line := range lines {
		var s struct {
			Name   string `json:"name"`
			Reps   int    `json:"reps"`
			Rounds struct {
				Mean float64 `json:"mean"`
				Min  float64 `json:"min"`
				Max  float64 `json:"max"`
			} `json:"rounds"`
		}
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("summary not JSON: %v\n%s", err, line)
		}
		if s.Reps != 3 {
			t.Fatalf("summary %s aggregated %d reps, want 3", s.Name, s.Reps)
		}
		if s.Rounds.Mean < s.Rounds.Min || s.Rounds.Mean > s.Rounds.Max || s.Rounds.Mean <= 0 {
			t.Fatalf("summary %s has inconsistent rounds aggregate: %s", s.Name, line)
		}
		if strings.Contains(s.Name, "rep=") {
			t.Fatalf("summary name still carries a rep suffix: %s", s.Name)
		}
	}
}

// TestTraceFileUntouchedOnConfigError: the trace file is created lazily on
// the first line, so a configuration error must leave an existing file
// exactly as it was.
func TestTraceFileUntouchedOnConfigError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, []byte("precious\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, code := runCapture(t, "-sweep", "-topo", "nosuch", "-trace", path)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	raw, err := os.ReadFile(path)
	if err != nil || string(raw) != "precious\n" {
		t.Fatalf("existing trace file clobbered: %q (err %v)", raw, err)
	}
}

// TestTraceWriteFailureReported: a trace stream that cannot be written must
// be reported and fail the run instead of silently exiting 0.
func TestTraceWriteFailureReported(t *testing.T) {
	path := filepath.Join(t.TempDir(), "missing-dir", "trace.jsonl")
	_, errb, code := runCapture(t, "-sweep", "-n", "6", "-trace", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1: %s", code, errb)
	}
	if !strings.Contains(errb, "trace:") {
		t.Fatalf("write failure not reported: %q", errb)
	}
}

// TestExperimentTraceJSONL: -trace also works in experiment mode, labeling
// each simulation of the suite. (T1 runs real compiled simulations; purely
// algebraic experiments like T2 produce no trace lines.)
func TestExperimentTraceJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t1.jsonl")
	_, errb, code := runCapture(t, "-run", "T1", "-trace", path)
	if code != 0 {
		t.Fatalf("experiment exited %d: %s", code, errb)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) == 0 {
		t.Fatal("trace empty")
	}
	sawDone := false
	for _, line := range lines {
		var row struct {
			Scenario string `json:"scenario"`
			Done     bool   `json:"done"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("trace line not JSON: %v\n%s", err, line)
		}
		if !strings.HasPrefix(row.Scenario, "run") {
			t.Fatalf("experiment trace line missing run label: %s", line)
		}
		sawDone = sawDone || row.Done
	}
	if !sawDone {
		t.Fatal("no run summary line in experiment trace")
	}
}

// TestShardEngineFlag pins the -shards knob: a sweep over step and shard
// engines with a fixed shard count produces identical stats per engine pair
// (the CLI surface of the cross-engine determinism contract), a negative
// count is rejected, and the knob leaks nothing into later invocations.
func TestShardEngineFlag(t *testing.T) {
	out, errb, code := runCapture(t,
		"-sweep", "-topo", "circulant", "-n", "24", "-engine", "step,shard",
		"-shards", "3", "-workers", "1")
	if code != 0 {
		t.Fatalf("sweep exited %d: %s", code, errb)
	}
	type rec struct {
		Engine string `json:"engine"`
		Rounds int    `json:"rounds"`
		Bytes  int    `json:"bytes"`
	}
	byEngine := map[string]rec{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var r rec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad record %q: %v", line, err)
		}
		byEngine[r.Engine] = r
	}
	s, ok1 := byEngine["step"]
	sh, ok2 := byEngine["shard"]
	if !ok1 || !ok2 {
		t.Fatalf("missing engine records: %v", byEngine)
	}
	if s.Rounds != sh.Rounds || s.Bytes != sh.Bytes {
		t.Fatalf("step and shard cells disagree: %+v vs %+v", s, sh)
	}

	if _, errb, code := runCapture(t, "-shards", "-1"); code != 2 || !strings.Contains(errb, "-shards") {
		t.Fatalf("negative -shards: code=%d stderr=%q", code, errb)
	}
}

// TestSweepCacheReuse pins the -cache satellite: a second identical
// invocation against the same cache directory recomputes nothing, reports
// its hit count on stderr, and replays the first run's records byte for
// byte (cached cells keep their original timings).
func TestSweepCacheReuse(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-sweep", "-topo", "clique", "-n", "8,12", "-adv", "none,flip",
		"-reps", "2", "-workers", "1", "-seed", "7", "-cache", dir}

	out1, err1, code := runCapture(t, args...)
	if code != 0 {
		t.Fatalf("cold sweep exited %d: %s", code, err1)
	}
	cells := len(strings.Split(strings.TrimSpace(out1), "\n"))
	if !strings.Contains(err1, "cache: 0 hits,") {
		t.Fatalf("cold run should report zero hits, stderr: %q", err1)
	}

	out2, err2, code := runCapture(t, args...)
	if code != 0 {
		t.Fatalf("warm sweep exited %d: %s", code, err2)
	}
	if out2 != out1 {
		t.Fatalf("warm replay not byte-identical:\ncold:\n%s\nwarm:\n%s", out1, out2)
	}
	wantTally := fmt.Sprintf("cache: %d hits, 0 misses", cells)
	if !strings.Contains(err2, wantTally) {
		t.Fatalf("warm run stderr %q missing %q", err2, wantTally)
	}

	// -cache without -sweep is a cross-mode conflict, like the axis flags.
	if _, msg, code := runCapture(t, "-cache", dir); code != 2 || !strings.Contains(msg, "sweep") {
		t.Fatalf("-cache without -sweep: code %d, msg %q", code, msg)
	}
}
