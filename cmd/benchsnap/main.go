// benchsnap captures a benchmark snapshot: it runs `go test -bench` with
// -benchmem, parses the standard benchmark output, and writes a dated JSON
// file (BENCH_<date>.json) with one record per benchmark — name, ns/op,
// B/op, allocs/op. CI uploads the file as an artifact on every push, so the
// perf trajectory of the simulator accumulates machine-readable snapshots
// instead of living only in CHANGES.md prose.
//
// Compare mode diffs two snapshots instead of running anything: it prints
// per-benchmark ns/op and B/op deltas for every name present in both files
// and exits nonzero when any delta regresses past -threshold — the CI
// regression gate between the fresh snapshot and the previous artifact.
//
// Usage:
//
//	benchsnap [-bench BenchmarkRun] [-benchtime 1x] [-count 1] [-pkg .] [-out BENCH_2026-07-26.json]
//	benchsnap -compare old.json [-threshold 0.25] new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Record is one benchmark measurement. When -count > 1, values are means
// over the runs of the same benchmark name.
type Record struct {
	Name     string  `json:"name"`
	Runs     int     `json:"runs"`
	Iters    int64   `json:"iters"`
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// Snapshot is the file format: metadata plus the records.
type Snapshot struct {
	Date    string   `json:"date"`
	Bench   string   `json:"bench"`
	Count   int      `json:"count"`
	GoTest  []string `json:"go_test_args"`
	Records []Record `json:"records"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchsnap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "BenchmarkRun", "benchmark regex passed to -bench")
	benchtime := fs.String("benchtime", "", "value for -benchtime (empty: go default)")
	count := fs.Int("count", 1, "value for -count; records average over runs")
	pkg := fs.String("pkg", ".", "package to benchmark")
	out := fs.String("out", "", "output file (default BENCH_<date>.json)")
	compare := fs.String("compare", "", "baseline snapshot file: diff it against the snapshot given as the positional argument instead of benchmarking")
	threshold := fs.Float64("threshold", 0.25, "compare: tolerated regression ratio for ns/op and B/op (0.25 = +25%)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *compare != "" {
		if fs.NArg() != 1 {
			fmt.Fprintln(stderr, "benchsnap: -compare needs exactly one positional argument (the new snapshot file)")
			return 2
		}
		return runCompare(*compare, fs.Arg(0), *threshold, stdout, stderr)
	}
	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = "BENCH_" + date + ".json"
	}

	goArgs := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		goArgs = append(goArgs, "-benchtime", *benchtime)
	}
	goArgs = append(goArgs, *pkg)

	cmd := exec.Command("go", goArgs...)
	cmd.Stderr = stderr
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		fmt.Fprintln(stderr, "benchsnap:", err)
		return 1
	}
	if err := cmd.Start(); err != nil {
		fmt.Fprintln(stderr, "benchsnap:", err)
		return 1
	}
	records, parseErr := parseBench(io.TeeReader(pipe, stdout))
	waitErr := cmd.Wait()
	if parseErr != nil {
		fmt.Fprintln(stderr, "benchsnap: parse:", parseErr)
		return 1
	}
	if waitErr != nil {
		fmt.Fprintln(stderr, "benchsnap: go test:", waitErr)
		return 1
	}
	snap := Snapshot{Date: date, Bench: *bench, Count: *count, GoTest: goArgs, Records: records}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "benchsnap:", err)
		return 1
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(stderr, "benchsnap:", err)
		return 1
	}
	fmt.Fprintf(stderr, "benchsnap: wrote %d records to %s\n", len(records), path)
	return 0
}

// loadSnapshot reads a snapshot file written by benchsnap.
func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// delta returns the relative change from old to new (+0.25 = 25% worse for
// cost metrics). A zero baseline growing to anything nonzero is +Inf — a
// zero-alloc path gaining allocations is exactly the regression class the
// gate exists for, and must never slip through as "+0%".
func delta(oldV, newV float64) float64 {
	if oldV == 0 {
		if newV == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (newV - oldV) / oldV
}

// runCompare diffs two snapshots benchmark-by-benchmark, printing ns/op and
// B/op deltas for every name in both files, and exits 1 when any delta
// exceeds the regression threshold. Benchmarks present in only one file are
// listed but never gate.
func runCompare(oldPath, newPath string, threshold float64, stdout, stderr io.Writer) int {
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchsnap:", err)
		return 2
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchsnap:", err)
		return 2
	}
	oldBy := map[string]Record{}
	for _, r := range oldSnap.Records {
		oldBy[r.Name] = r
	}
	fmt.Fprintf(stdout, "comparing %s (%s) -> %s (%s), threshold +%.0f%%\n",
		oldPath, oldSnap.Date, newPath, newSnap.Date, threshold*100)
	var regressions []string
	matched := map[string]bool{}
	for _, nr := range newSnap.Records {
		or, ok := oldBy[nr.Name]
		if !ok {
			fmt.Fprintf(stdout, "%-60s new benchmark (%.0f ns/op, %.0f B/op)\n", nr.Name, nr.NsOp, nr.BOp)
			continue
		}
		matched[nr.Name] = true
		dNs, dB := delta(or.NsOp, nr.NsOp), delta(or.BOp, nr.BOp)
		fmt.Fprintf(stdout, "%-60s ns/op %12.0f -> %12.0f (%+6.1f%%)   B/op %12.0f -> %12.0f (%+6.1f%%)\n",
			nr.Name, or.NsOp, nr.NsOp, dNs*100, or.BOp, nr.BOp, dB*100)
		if dNs > threshold {
			regressions = append(regressions, fmt.Sprintf("%s: ns/op %+.1f%%", nr.Name, dNs*100))
		}
		if dB > threshold {
			regressions = append(regressions, fmt.Sprintf("%s: B/op %+.1f%%", nr.Name, dB*100))
		}
	}
	for _, or := range oldSnap.Records {
		if !matched[or.Name] {
			fmt.Fprintf(stdout, "%-60s removed (was %.0f ns/op)\n", or.Name, or.NsOp)
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(stderr, "benchsnap: %d regression(s) beyond +%.0f%%:\n", len(regressions), threshold*100)
		for _, r := range regressions {
			fmt.Fprintln(stderr, " ", r)
		}
		return 1
	}
	fmt.Fprintf(stdout, "no regressions beyond +%.0f%%\n", threshold*100)
	return 0
}

// benchLine matches standard `go test -bench -benchmem` output:
//
//	BenchmarkRun/step/clique64-8  92  12808359 ns/op  2174464 B/op  16780 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseBench folds benchmark output lines into per-name mean records,
// preserving first-seen order.
func parseBench(r io.Reader) ([]Record, error) {
	byName := map[string]*Record{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := trimGOMAXPROCS(m[1])
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		var b, allocs float64
		if m[4] != "" {
			b, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			allocs, _ = strconv.ParseFloat(m[5], 64)
		}
		rec := byName[name]
		if rec == nil {
			rec = &Record{Name: name}
			byName[name] = rec
			order = append(order, name)
		}
		rec.Runs++
		rec.Iters += iters
		rec.NsOp += ns
		rec.BOp += b
		rec.AllocsOp += allocs
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Record, 0, len(order))
	for _, name := range order {
		rec := *byName[name]
		n := float64(rec.Runs)
		rec.NsOp /= n
		rec.BOp /= n
		rec.AllocsOp /= n
		out = append(out, rec)
	}
	return out, nil
}

// trimGOMAXPROCS drops the trailing -<procs> suffix go test appends to
// benchmark names, keeping subbenchmark paths intact.
func trimGOMAXPROCS(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
