// benchsnap captures a benchmark snapshot: it runs `go test -bench` with
// -benchmem, parses the standard benchmark output, and writes a dated JSON
// file (BENCH_<date>.json) with one record per benchmark — name, ns/op,
// B/op, allocs/op. CI uploads the file as an artifact on every push, so the
// perf trajectory of the simulator accumulates machine-readable snapshots
// instead of living only in CHANGES.md prose.
//
// Usage:
//
//	benchsnap [-bench BenchmarkRun] [-benchtime 1x] [-count 1] [-pkg .] [-out BENCH_2026-07-26.json]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Record is one benchmark measurement. When -count > 1, values are means
// over the runs of the same benchmark name.
type Record struct {
	Name     string  `json:"name"`
	Runs     int     `json:"runs"`
	Iters    int64   `json:"iters"`
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// Snapshot is the file format: metadata plus the records.
type Snapshot struct {
	Date    string   `json:"date"`
	Bench   string   `json:"bench"`
	Count   int      `json:"count"`
	GoTest  []string `json:"go_test_args"`
	Records []Record `json:"records"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchsnap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "BenchmarkRun", "benchmark regex passed to -bench")
	benchtime := fs.String("benchtime", "", "value for -benchtime (empty: go default)")
	count := fs.Int("count", 1, "value for -count; records average over runs")
	pkg := fs.String("pkg", ".", "package to benchmark")
	out := fs.String("out", "", "output file (default BENCH_<date>.json)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = "BENCH_" + date + ".json"
	}

	goArgs := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		goArgs = append(goArgs, "-benchtime", *benchtime)
	}
	goArgs = append(goArgs, *pkg)

	cmd := exec.Command("go", goArgs...)
	cmd.Stderr = stderr
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		fmt.Fprintln(stderr, "benchsnap:", err)
		return 1
	}
	if err := cmd.Start(); err != nil {
		fmt.Fprintln(stderr, "benchsnap:", err)
		return 1
	}
	records, parseErr := parseBench(io.TeeReader(pipe, stdout))
	waitErr := cmd.Wait()
	if parseErr != nil {
		fmt.Fprintln(stderr, "benchsnap: parse:", parseErr)
		return 1
	}
	if waitErr != nil {
		fmt.Fprintln(stderr, "benchsnap: go test:", waitErr)
		return 1
	}
	snap := Snapshot{Date: date, Bench: *bench, Count: *count, GoTest: goArgs, Records: records}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "benchsnap:", err)
		return 1
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(stderr, "benchsnap:", err)
		return 1
	}
	fmt.Fprintf(stderr, "benchsnap: wrote %d records to %s\n", len(records), path)
	return 0
}

// benchLine matches standard `go test -bench -benchmem` output:
//
//	BenchmarkRun/step/clique64-8  92  12808359 ns/op  2174464 B/op  16780 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseBench folds benchmark output lines into per-name mean records,
// preserving first-seen order.
func parseBench(r io.Reader) ([]Record, error) {
	byName := map[string]*Record{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := trimGOMAXPROCS(m[1])
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		var b, allocs float64
		if m[4] != "" {
			b, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			allocs, _ = strconv.ParseFloat(m[5], 64)
		}
		rec := byName[name]
		if rec == nil {
			rec = &Record{Name: name}
			byName[name] = rec
			order = append(order, name)
		}
		rec.Runs++
		rec.Iters += iters
		rec.NsOp += ns
		rec.BOp += b
		rec.AllocsOp += allocs
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Record, 0, len(order))
	for _, name := range order {
		rec := *byName[name]
		n := float64(rec.Runs)
		rec.NsOp /= n
		rec.BOp /= n
		rec.AllocsOp /= n
		out = append(out, rec)
	}
	return out, nil
}

// trimGOMAXPROCS drops the trailing -<procs> suffix go test appends to
// benchmark names, keeping subbenchmark paths intact.
func trimGOMAXPROCS(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
