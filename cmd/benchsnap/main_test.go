package main

import (
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
BenchmarkRun/step/clique64-8         	      92	  12808359 ns/op	 2174464 B/op	   16780 allocs/op
BenchmarkRun/step/clique64-8         	     100	  12000001 ns/op	 2174462 B/op	   16780 allocs/op
BenchmarkRun/goroutine/clique32-8    	     500	   3000000 ns/op	  500000 B/op	    1000 allocs/op
BenchmarkNoMem-8                     	    1000	      1234 ns/op
PASS
`
	recs, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3: %+v", len(recs), recs)
	}
	r0 := recs[0]
	if r0.Name != "BenchmarkRun/step/clique64" || r0.Runs != 2 {
		t.Fatalf("first record wrong: %+v", r0)
	}
	if r0.NsOp != (12808359+12000001)/2.0 || r0.AllocsOp != 16780 {
		t.Fatalf("mean wrong: %+v", r0)
	}
	if recs[1].Name != "BenchmarkRun/goroutine/clique32" {
		t.Fatalf("order not preserved: %+v", recs[1])
	}
	if recs[2].Name != "BenchmarkNoMem" || recs[2].BOp != 0 {
		t.Fatalf("memless line wrong: %+v", recs[2])
	}
}

func TestTrimGOMAXPROCS(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkRun/step/clique64-8": "BenchmarkRun/step/clique64",
		"BenchmarkRun/step/clique64":   "BenchmarkRun/step/clique64",
		"BenchmarkX-foo":               "BenchmarkX-foo",
	} {
		if got := trimGOMAXPROCS(in); got != want {
			t.Fatalf("trimGOMAXPROCS(%q) = %q, want %q", in, got, want)
		}
	}
}
