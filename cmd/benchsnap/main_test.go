package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
BenchmarkRun/step/clique64-8         	      92	  12808359 ns/op	 2174464 B/op	   16780 allocs/op
BenchmarkRun/step/clique64-8         	     100	  12000001 ns/op	 2174462 B/op	   16780 allocs/op
BenchmarkRun/goroutine/clique32-8    	     500	   3000000 ns/op	  500000 B/op	    1000 allocs/op
BenchmarkNoMem-8                     	    1000	      1234 ns/op
PASS
`
	recs, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3: %+v", len(recs), recs)
	}
	r0 := recs[0]
	if r0.Name != "BenchmarkRun/step/clique64" || r0.Runs != 2 {
		t.Fatalf("first record wrong: %+v", r0)
	}
	if r0.NsOp != (12808359+12000001)/2.0 || r0.AllocsOp != 16780 {
		t.Fatalf("mean wrong: %+v", r0)
	}
	if recs[1].Name != "BenchmarkRun/goroutine/clique32" {
		t.Fatalf("order not preserved: %+v", recs[1])
	}
	if recs[2].Name != "BenchmarkNoMem" || recs[2].BOp != 0 {
		t.Fatalf("memless line wrong: %+v", recs[2])
	}
}

func TestTrimGOMAXPROCS(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkRun/step/clique64-8": "BenchmarkRun/step/clique64",
		"BenchmarkRun/step/clique64":   "BenchmarkRun/step/clique64",
		"BenchmarkX-foo":               "BenchmarkX-foo",
	} {
		if got := trimGOMAXPROCS(in); got != want {
			t.Fatalf("trimGOMAXPROCS(%q) = %q, want %q", in, got, want)
		}
	}
}

func writeSnapshot(t *testing.T, path string, recs []Record) {
	t.Helper()
	data, err := json.MarshalIndent(Snapshot{Date: "2026-01-01", Records: recs}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCompareMode: -compare prints per-benchmark ns/op and B/op deltas and
// gates on the regression threshold — exit 0 within it, exit 1 beyond it,
// with added/removed benchmarks reported but never gating.
func TestCompareMode(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeSnapshot(t, oldPath, []Record{
		{Name: "BenchmarkRun/step/clique64", NsOp: 1000, BOp: 4000},
		{Name: "BenchmarkRun/step/removed", NsOp: 10, BOp: 10},
	})
	writeSnapshot(t, newPath, []Record{
		{Name: "BenchmarkRun/step/clique64", NsOp: 1100, BOp: 4100}, // +10% / +2.5%
		{Name: "BenchmarkRun/step/added", NsOp: 5, BOp: 5},
	})

	var out, errb bytes.Buffer
	code := run([]string{"-compare", oldPath, "-threshold", "0.25", newPath}, &out, &errb)
	if code != 0 {
		t.Fatalf("within-threshold compare exited %d: %s", code, errb.String())
	}
	for _, want := range []string{"clique64", "+10.0%", "new benchmark", "removed", "no regressions"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("compare output missing %q:\n%s", want, out.String())
		}
	}

	// Tighten the threshold below the ns/op delta: the same diff must gate.
	out.Reset()
	errb.Reset()
	code = run([]string{"-compare", oldPath, "-threshold", "0.05", newPath}, &out, &errb)
	if code != 1 {
		t.Fatalf("regression beyond threshold exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "regression") || !strings.Contains(errb.String(), "ns/op +10.0%") {
		t.Fatalf("regression not reported: %s", errb.String())
	}

	// B/op regressions gate too.
	writeSnapshot(t, newPath, []Record{{Name: "BenchmarkRun/step/clique64", NsOp: 1000, BOp: 8000}})
	if code := run([]string{"-compare", oldPath, newPath}, &out, &errb); code != 1 {
		t.Fatalf("B/op regression exited %d, want 1", code)
	}

	// A zero baseline growing to anything nonzero gates regardless of the
	// threshold: a zero-alloc path gaining allocations must never pass as
	// "+0%".
	writeSnapshot(t, oldPath, []Record{{Name: "BenchmarkZeroAlloc", NsOp: 1000, BOp: 0}})
	writeSnapshot(t, newPath, []Record{{Name: "BenchmarkZeroAlloc", NsOp: 1000, BOp: 64}})
	errb.Reset()
	if code := run([]string{"-compare", oldPath, "-threshold", "100", newPath}, &out, &errb); code != 1 {
		t.Fatalf("0 -> 64 B/op regression exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "BenchmarkZeroAlloc") {
		t.Fatalf("zero-baseline regression not reported: %s", errb.String())
	}

	// Usage errors: missing positional arg, unreadable files.
	if code := run([]string{"-compare", oldPath}, &out, &errb); code != 2 {
		t.Fatalf("missing positional arg exited %d, want 2", code)
	}
	if code := run([]string{"-compare", filepath.Join(dir, "nope.json"), newPath}, &out, &errb); code != 2 {
		t.Fatalf("unreadable baseline exited %d, want 2", code)
	}
}
