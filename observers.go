package mobilecongest

import (
	"io"

	"mobilecongest/internal/congest"
)

// Observability surface: observers hook the engine's round lifecycle
// (RoundStart / RoundDelivered / RunDone) and are attached to a Scenario with
// WithObserver, to a Grid with CaptureTrace or Observers, or streamed from
// the CLI with `mobilesim -trace`. The engine's own Stats is itself a
// StatsObserver it installs internally — the built-ins below add traces,
// congestion histograms, and corruption logs on the same pipeline.

type (
	// Observer receives round lifecycle events; see congest.Observer.
	Observer = congest.Observer
	// RoundView is the per-round delivered-traffic view handed to observers.
	RoundView = congest.RoundView
	// StatsObserver accumulates run statistics (what Result.Stats carries).
	StatsObserver = congest.StatsObserver
	// TraceObserver records every round's delivered traffic in memory.
	TraceObserver = congest.TraceObserver
	// RoundTrace is one captured round: messages plus corrupted edges.
	RoundTrace = congest.RoundTrace
	// TraceMsg is one delivered directed message in a trace.
	TraceMsg = congest.TraceMsg
	// CongestionObserver builds a per-edge congestion histogram plus
	// per-round bandwidth records (set BudgetBits to count would-be
	// violations observationally).
	CongestionObserver = congest.CongestionObserver
	// BandwidthRound is one round's bandwidth record from a
	// CongestionObserver: message count, max/mean bits per message, and
	// violations against the observer's BudgetBits.
	BandwidthRound = congest.BandwidthRound
	// CorruptionLog records the adversary's touches round by round.
	CorruptionLog = congest.CorruptionLog
	// CorruptionEvent is one round's corrupted edge set.
	CorruptionEvent = congest.CorruptionEvent
	// JSONLTrace streams per-round trace lines to a writer as the run executes.
	JSONLTrace = congest.JSONLTrace
)

// NewStatsObserver returns an independent statistics accumulator.
func NewStatsObserver() *StatsObserver { return congest.NewStatsObserver() }

// NewTraceObserver returns an in-memory per-round traffic trace recorder.
func NewTraceObserver() *TraceObserver { return congest.NewTraceObserver() }

// NewCongestionObserver returns a per-edge congestion histogram builder.
func NewCongestionObserver() *CongestionObserver { return congest.NewCongestionObserver() }

// NewCorruptionLog returns a per-round adversary corruption log.
func NewCorruptionLog() *CorruptionLog { return congest.NewCorruptionLog() }

// NewJSONLTrace returns an observer streaming one JSON line per delivered
// round (plus a run summary line) to w; label tags each line. Concurrent
// runs may share w when it serializes Write calls.
func NewJSONLTrace(w io.Writer, label string) *JSONLTrace { return congest.NewJSONLTrace(w, label) }
