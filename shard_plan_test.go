package mobilecongest

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// TestShardPlanStreamConcurrent runs shard-engine cells concurrently under
// Plan.Stream — multiple workers each driving a pooled parallel engine — and
// pins that the record set is identical to the single-worker run. Under
// -race this is the oversubscription/concurrency test for nested parallelism
// (P workers × S shards).
func TestShardPlanStreamConcurrent(t *testing.T) {
	mkPlan := func(workers int) Plan {
		return Plan{
			Axes: []Axis{
				TopologyAxis("circulant"),
				NAxis(48),
				EngineAxis("step", "shard"),
				AdversaryAxis("none", "flip"),
				RepsAxis(5),
			},
			BaseSeed: 17,
			Workers:  workers,
		}
	}
	strip := func(recs []Record) []Record {
		out := append([]Record(nil), recs...)
		for i := range out {
			out[i].ElapsedMS = 0 // wall time is the one legitimately varying field
		}
		return out
	}
	want, err := mkPlan(1).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, err := mkPlan(4).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(strip(want), strip(got)) {
		t.Fatalf("records differ between 1 and 4 workers:\n want %+v\n got  %+v", want, got)
	}
	// The step and shard cells of each (adversary, rep) pair must agree —
	// the equivalence contract holding inside a concurrent sweep. The engine
	// axis is excluded from cell seeds, so matching cells share a Seed.
	checked := 0
	for _, r := range want {
		if r.Engine != "shard" {
			continue
		}
		for _, s := range want {
			if s.Engine == "step" && s.Seed == r.Seed && s.Adversary == r.Adversary && s.Rep == r.Rep {
				if s.Rounds != r.Rounds || s.Messages != r.Messages || s.Bytes != r.Bytes {
					t.Fatalf("shard cell diverged from step cell:\n step  %+v\n shard %+v", s, r)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no shard/step cell pairs compared; the check is vacuous")
	}
}

// TestShardPlanStreamCancelNoGoroutineLeak cancels a stream of shard-engine
// cells mid-run and pins that everything — plan workers AND the shard pools
// parked on their run contexts — is released: the goroutine count returns to
// its pre-stream level.
func TestShardPlanStreamCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	plan := Plan{
		Axes: []Axis{
			TopologyAxis("circulant"),
			NAxis(64),
			EngineAxis("shard"),
			RepsAxis(300),
		},
		BaseSeed: 5,
		Workers:  4,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	yielded := 0
	var finalErr error
	for _, err := range plan.Stream(ctx) {
		if err != nil {
			finalErr = err
			break
		}
		yielded++
		if yielded == 3 {
			cancel()
		}
	}
	if finalErr != context.Canceled {
		t.Fatalf("stream ended with %v, want context.Canceled", finalErr)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("leaked goroutines (workers or shard pools): before=%d after=%d",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
