package mobilecongest

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/graph"
)

func TestProtocolRegistryContents(t *testing.T) {
	want := []string{
		"floodmax", "broadcast", "bfs", "sumtoroot", "tokenring",
		"colorring", "mstclique", "secure-broadcast", "hardened-clique",
	}
	for _, name := range want {
		if !HasProtocol(name) {
			t.Fatalf("builtin protocol %s not registered", name)
		}
	}
	// Custom registrations are visible and listed.
	RegisterProtocol("test-noop", func(g *Graph, p ProtoParams) (Protocol, any, error) {
		return algorithms.FloodMax(1), nil, nil
	})
	found := false
	for _, n := range Protocols() {
		if n == "test-noop" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered protocol not listed")
	}
	g := NewClique(6)
	if _, _, err := BuildProtocol("nosuch", g, ProtoParams{}); err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("unknown protocol: err = %v", err)
	}
	if _, _, err := BuildProtocol("floodmax", g, ProtoParams{Root: 99}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range root: err = %v", err)
	}
	// Topology-shape requirements are enforced at build time.
	if _, _, err := BuildProtocol("mstclique", NewCirculant(10, 2), ProtoParams{}); err == nil {
		t.Fatal("mstclique accepted a non-clique topology")
	}
	if _, _, err := BuildProtocol("hardened-clique", NewCirculant(10, 2), ProtoParams{}); err == nil {
		t.Fatal("hardened-clique accepted a non-clique topology")
	}
	if _, _, err := BuildProtocol("colorring", NewClique(6), ProtoParams{}); err == nil {
		t.Fatal("colorring accepted a non-ring topology")
	}
	// Compiled entries return their trusted preprocessing artifact.
	_, sh, err := BuildProtocol("hardened-clique", g, ProtoParams{F: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sh == nil {
		t.Fatal("hardened-clique returned no shared artifact")
	}
	// Disconnected graphs have no default schedule length: the flood and
	// rooted families must error rather than run zero rounds and look
	// successful.
	disc := graph.New(4) // no edges
	for _, name := range []string{"floodmax", "broadcast", "bfs", "sumtoroot", "secure-broadcast"} {
		if _, _, err := BuildProtocol(name, disc, ProtoParams{}); err == nil || !strings.Contains(err.Error(), "disconnected") {
			t.Fatalf("%s on a disconnected graph: err = %v", name, err)
		}
		// An explicit parameter overrides the default and is accepted.
		if _, _, err := BuildProtocol(name, disc, ProtoParams{Rounds: 2}); err != nil {
			t.Fatalf("%s with explicit rounds on a disconnected graph: %v", name, err)
		}
	}
}

// registryTopologyFor picks a topology satisfying a registry protocol's
// shape requirement: the congested-clique entries need a clique, the ring
// entries a cycle, and everything else runs on a circulant.
func registryTopologyFor(name string) (topo string, n, k int) {
	switch name {
	case "mstclique", "secure-broadcast":
		return "clique", 8, 0
	case "hardened-clique":
		return "clique", 6, 0
	case "colorring", "tokenring":
		return "cycle", 9, 0
	default:
		return "circulant", 10, 2
	}
}

// TestProtocolRegistryCrossEngine is the protocol-registry leg of the
// cross-engine equivalence contract: every registered protocol name must run
// by name on every engine with byte-identical Results and observer traces.
// Names registered by tests (prefix "test-") are skipped.
func TestProtocolRegistryCrossEngine(t *testing.T) {
	for _, name := range Protocols() {
		if strings.HasPrefix(name, "test-") {
			continue
		}
		topo, n, k := registryTopologyFor(name)
		// A weak adversary keeps the adversarial path in the loop without
		// defeating the uncompiled protocols; the compiled entries defend
		// against exactly this f.
		adv, f := "eavesdrop", 1
		run := func(engine string) (*Result, *TraceObserver, error) {
			tr := NewTraceObserver()
			res, err := NewScenario(
				WithTopology(topo, n, k),
				WithProtocolName(name),
				WithAdversaryName(adv, f),
				WithEngineName(engine),
				WithSeed(23),
				WithObserver(tr),
			).Run()
			return res, tr, err
		}
		want, wantTr, err1 := run("goroutine")
		if err1 != nil {
			t.Fatalf("%s: goroutine err=%v", name, err1)
		}
		wout := fmt.Sprintf("%#v", want.Outputs)
		wtr, err := json.Marshal(wantTr.Rounds())
		if err != nil {
			t.Fatal(err)
		}
		if len(wantTr.Rounds()) != want.Stats.Rounds {
			t.Fatalf("%s: trace has %d rounds, stats say %d", name, len(wantTr.Rounds()), want.Stats.Rounds)
		}
		for _, engine := range []string{"step", "shard"} {
			got, gotTr, err2 := run(engine)
			if err2 != nil {
				t.Fatalf("%s: %s err=%v", name, engine, err2)
			}
			if want.Stats != got.Stats {
				t.Fatalf("%s: stats differ across engines:\n goroutine %+v\n %-9s %+v", name, want.Stats, engine, got.Stats)
			}
			gout := fmt.Sprintf("%#v", got.Outputs)
			if wout != gout {
				t.Fatalf("%s: outputs differ across engines:\n goroutine %s\n %-9s %s", name, wout, engine, gout)
			}
			gtr, err := json.Marshal(gotTr.Rounds())
			if err != nil {
				t.Fatal(err)
			}
			if string(wtr) != string(gtr) {
				t.Fatalf("%s: traces differ between goroutine and %s", name, engine)
			}
		}
	}
}

// TestProtocolRegistryEndToEnd pins the semantic contract of the registry
// entries whose outputs are independently checkable.
func TestProtocolRegistryEndToEnd(t *testing.T) {
	// sumtoroot: every node must output the global sum of the generated
	// inputs, which SumInputs reports alongside them.
	seed := int64(5)
	_, total := algorithms.SumInputs(12, (seed ^ protoSeedMix))
	res, err := NewScenario(
		WithTopology("circulant", 12, 2),
		WithProtocolName("sumtoroot"),
		WithSeed(seed),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	for u, o := range res.Outputs {
		if o.(uint64) != total {
			t.Fatalf("sumtoroot node %d output %v, want %d", u, o, total)
		}
	}
	// secure-broadcast and broadcast deliver the same seed-derived value to
	// every node; the compiled form must agree with its payload's value
	// derivation.
	for _, name := range []string{"broadcast", "secure-broadcast"} {
		res, err := NewScenario(
			WithTopology("clique", 8, 0),
			WithProtocolName(name),
			WithSeed(seed),
		).Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := protoValue(seed ^ protoSeedMix)
		for u, o := range res.Outputs {
			if o.(uint64) != want {
				t.Fatalf("%s node %d output %v, want %d", name, u, o, want)
			}
		}
	}
	// hardened-clique under exactly the byzantine strength it defends
	// against still delivers the broadcast value everywhere.
	res, err = NewScenario(
		WithTopology("clique", 8, 0),
		WithProtocolName("hardened-clique"),
		WithAdversaryName("flip", 2),
		WithSeed(seed),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CorruptedEdgeRounds == 0 {
		t.Fatal("flip adversary corrupted nothing")
	}
	want := protoValue(seed ^ protoSeedMix)
	for u, o := range res.Outputs {
		if o.(uint64) != want {
			t.Fatalf("hardened-clique node %d output %v under flip, want %d", u, o, want)
		}
	}
}

// TestProtocolNameScenarioSemantics: WithProtocolName and WithProtocol are
// last-one-wins, unknown names surface at Run, and WithShared overrides a
// registry-returned artifact.
func TestProtocolNameScenarioSemantics(t *testing.T) {
	if _, err := NewScenario(
		WithTopology("clique", 6, 0),
		WithProtocolName("nosuch"),
	).Run(); err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("unknown protocol name: err = %v", err)
	}
	// Later WithProtocol displaces the name.
	res, err := NewScenario(
		WithTopology("cycle", 10, 0),
		WithProtocolName("broadcast"),
		WithProtocol(algorithms.FloodMax(5)),
		WithSeed(1),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0].(uint64) != 9 {
		t.Fatalf("WithProtocol should displace earlier WithProtocolName: out=%v", res.Outputs[0])
	}
	// Later WithProtocolName displaces the protocol instance.
	res, err = NewScenario(
		WithTopology("cycle", 10, 0),
		WithProtocol(algorithms.FloodMax(5)),
		WithProtocolName("bfs"),
		WithSeed(1),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Outputs[0].(algorithms.BFSResult); !ok {
		t.Fatalf("WithProtocolName should displace earlier WithProtocol: out=%T", res.Outputs[0])
	}
	// WithProtocolParam drives the family parameter (floodmax rounds).
	res, err = NewScenario(
		WithTopology("cycle", 10, 0),
		WithProtocolName("floodmax"),
		WithProtocolParam(3),
		WithSeed(1),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 3 {
		t.Fatalf("WithProtocolParam(3): rounds = %d, want 3", res.Stats.Rounds)
	}
}
