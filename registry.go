package mobilecongest

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"
	"sync"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/graph"
)

// Name-keyed topology and adversary registries. They let scenarios, sweeps,
// and the CLI refer to graph families and attack models by string — the glue
// that makes parameter grids expressible without importing the internal
// packages. Built-in entries cover the families and adversaries the paper's
// experiments exercise; downstream code can add its own with RegisterTopology
// and RegisterAdversary.

// TopologyFunc builds a graph of the named family. n is the node count; k is
// the family's secondary parameter (chord distance for circulants, rows for
// grids) and is ignored by families that have none.
type TopologyFunc func(n, k int) (*Graph, error)

// AdversaryFunc builds a named adversary over g. f is the per-round edge
// strength (ignored by "none") and seed drives the adversary's randomness.
// A nil Adversary (fault-free) is a valid return.
type AdversaryFunc func(g *Graph, f int, seed int64) (Adversary, error)

var (
	registryMu  sync.RWMutex
	topologies  = map[string]TopologyFunc{}
	adversaries = map[string]AdversaryFunc{}
)

// RegisterTopology adds (or replaces) a named topology family.
func RegisterTopology(name string, fn TopologyFunc) {
	registryMu.Lock()
	defer registryMu.Unlock()
	topologies[name] = fn
}

// RegisterAdversary adds (or replaces) a named adversary family.
func RegisterAdversary(name string, fn AdversaryFunc) {
	registryMu.Lock()
	defer registryMu.Unlock()
	adversaries[name] = fn
}

// BuildTopology instantiates a registered topology.
func BuildTopology(name string, n, k int) (*Graph, error) {
	registryMu.RLock()
	fn, ok := topologies[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("mobilecongest: unknown topology %q (have %v)", name, Topologies())
	}
	return fn(n, k)
}

// HasTopology reports whether a topology family is registered under name.
func HasTopology(name string) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := topologies[name]
	return ok
}

// HasAdversary reports whether an adversary family is registered under name.
func HasAdversary(name string) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := adversaries[name]
	return ok
}

// BuildAdversary instantiates a registered adversary.
func BuildAdversary(name string, g *Graph, f int, seed int64) (Adversary, error) {
	registryMu.RLock()
	fn, ok := adversaries[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("mobilecongest: unknown adversary %q (have %v)", name, Adversaries())
	}
	return fn(g, f, seed)
}

// Topologies lists the registered topology names, sorted.
func Topologies() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(topologies))
	for n := range topologies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Adversaries lists the registered adversary names, sorted.
func Adversaries() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(adversaries))
	for n := range adversaries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterTopology("clique", func(n, _ int) (*Graph, error) {
		return graph.Clique(n), nil
	})
	RegisterTopology("cycle", func(n, _ int) (*Graph, error) {
		return graph.Cycle(n), nil
	})
	RegisterTopology("path", func(n, _ int) (*Graph, error) {
		return graph.Path(n), nil
	})
	RegisterTopology("circulant", func(n, k int) (*Graph, error) {
		if k <= 0 {
			k = 2
		}
		return graph.Circulant(n, k), nil
	})
	RegisterTopology("grid", func(n, k int) (*Graph, error) {
		rows := k
		if rows <= 0 {
			// Default to the most-square factorization.
			for rows = int(math.Sqrt(float64(n))); rows > 1 && n%rows != 0; rows-- {
			}
			if rows < 1 {
				rows = 1
			}
		}
		if n%rows != 0 {
			return nil, fmt.Errorf("mobilecongest: grid rows %d does not divide n=%d", rows, n)
		}
		return graph.Grid(rows, n/rows), nil
	})
	RegisterTopology("hypercube", func(n, _ int) (*Graph, error) {
		if n <= 0 || n&(n-1) != 0 {
			return nil, fmt.Errorf("mobilecongest: hypercube needs a power-of-two n, got %d", n)
		}
		return graph.Hypercube(bits.TrailingZeros(uint(n))), nil
	})
	RegisterTopology("expander", func(n, k int) (*Graph, error) {
		d := k
		if d <= 0 {
			d = 8
		}
		if d >= n || n*d%2 != 0 {
			return nil, fmt.Errorf("mobilecongest: expander needs degree < n and n*degree even, got n=%d degree=%d", n, d)
		}
		// The draw is seeded from (n, d), so a given cell always sweeps the
		// very same graph — the family is a registry of fixed expanders, not
		// a fresh sample per run.
		return graph.RandomRegular(n, d, rand.New(rand.NewSource(int64(n)*1_000_003+int64(d)))), nil
	})

	RegisterAdversary("none", func(*Graph, int, int64) (Adversary, error) {
		return nil, nil
	})
	RegisterAdversary("eavesdrop", func(g *Graph, f int, seed int64) (Adversary, error) {
		return adversary.NewMobileEavesdropper(g, f, seed), nil
	})
	RegisterAdversary("static-eavesdrop", func(g *Graph, f int, seed int64) (Adversary, error) {
		return adversary.NewStaticEavesdropper(g, f, seed), nil
	})
	mobileByz := func(cor adversary.Corruption) AdversaryFunc {
		return func(g *Graph, f int, seed int64) (Adversary, error) {
			return adversary.NewMobileByzantine(g, f, seed, adversary.SelectRandom, cor), nil
		}
	}
	RegisterAdversary("flip", mobileByz(adversary.CorruptFlip))
	RegisterAdversary("drop", mobileByz(adversary.CorruptDrop))
	RegisterAdversary("randomize", mobileByz(adversary.CorruptRandomize))
	RegisterAdversary("swap", mobileByz(adversary.CorruptSwap))
	RegisterAdversary("inject", mobileByz(adversary.CorruptInject))
	RegisterAdversary("busiest", func(g *Graph, f int, seed int64) (Adversary, error) {
		return adversary.NewMobileByzantine(g, f, seed, adversary.SelectBusiest, adversary.CorruptFlip), nil
	})
	RegisterAdversary("static-flip", func(g *Graph, f int, seed int64) (Adversary, error) {
		return adversary.NewStaticByzantine(g, f, seed, adversary.SelectRandom, adversary.CorruptFlip), nil
	})
}
